// Package dolevyao is the reproduction's substitute for the paper's
// ProVerif analysis (§VI-A): a symbolic Dolev–Yao attacker-knowledge-
// closure engine over a small term algebra modelling PAG's cryptographic
// messages.
//
// The attacker is global and active (§III): it records all network
// traffic, controls the coalition's private keys and secrets, can decrypt
// anything addressed to coalition members, divide known prime products,
// lift hashes, and run the dictionary attack of §VI-A ("the attacker has
// access to the list of updates that node B may have received ... the
// attacker would have to hash any possible combination of updates using
// the prime number"). Its only limit is that it "is not able to invert
// encryptions".
//
// The engine answers the paper's reachability question: starting from the
// traffic of one PAG round plus the coalition's secrets, can the attacker
// derive an update exchanged between two honest nodes (property P1)?
// Mirroring the ProVerif result, closure proves P1 safe for coalitions
// below the threshold and finds the known attack at the threshold
// (a corrupted designated monitor's remainder product divided by corrupted
// predecessors' primes reveals an honest exchange's prime).
package dolevyao

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies atoms.
type Kind int

// Atom kinds.
const (
	// KPrime is a prime exponent chosen by a receiver.
	KPrime Kind = iota + 1
	// KUpdate is a content chunk (dictionary candidate).
	KUpdate
	// KPriv is a node's private key.
	KPriv
	// KData is any other opaque payload.
	KData
)

// Term is a symbolic message component.
type Term interface {
	// key returns the canonical identity of the term.
	key() string
}

// Atom is an atomic secret or datum.
type Atom struct {
	Kind Kind
	Name string
}

func (a Atom) key() string { return fmt.Sprintf("atom(%d,%s)", a.Kind, a.Name) }

// Priv returns the private-key atom of a node.
func Priv(node string) Atom { return Atom{Kind: KPriv, Name: node} }

// Enc is {body}_pk(To): public-key encryption to a node.
type Enc struct {
	To   string
	Body []Term
}

func (e Enc) key() string { return "enc(" + e.To + "," + keyList(e.Body) + ")" }

// Sig is ⟨body⟩_By: a signature. Dolev–Yao signatures do not hide their
// content: anyone observing the message reads the body.
type Sig struct {
	By   string
	Body []Term
}

func (s Sig) key() string { return "sig(" + s.By + "," + keyList(s.Body) + ")" }

// Hash is H(U)_(Key,M): the homomorphic hash.
type Hash struct {
	U   Term
	Key Term
}

func (h Hash) key() string { return "hash(" + h.U.key() + "," + h.Key.key() + ")" }

// Prod is a commutative product of factors (prime products K and remainder
// products, or products of updates).
type Prod struct {
	Factors []Term
}

func (p Prod) key() string {
	ks := make([]string, len(p.Factors))
	for i, f := range p.Factors {
		ks[i] = f.key()
	}
	sort.Strings(ks)
	return "prod(" + strings.Join(ks, ",") + ")"
}

func keyList(ts []Term) string {
	ks := make([]string, len(ts))
	for i, t := range ts {
		ks[i] = t.key()
	}
	return strings.Join(ks, ";")
}

// System is the attacker's knowledge base.
type System struct {
	known map[string]Term
	// candidates is the dictionary universe of update atoms (§VI-A).
	candidates map[string]bool
}

// NewAttacker creates an empty knowledge base.
func NewAttacker() *System {
	return &System{
		known:      make(map[string]Term),
		candidates: make(map[string]bool),
	}
}

// Learn adds a term to the knowledge base (traffic observation or
// coalition secret).
func (s *System) Learn(t Term) { s.known[t.key()] = t }

// AddCandidate registers an update name in the dictionary universe.
func (s *System) AddCandidate(name string) { s.candidates[name] = true }

// Knows reports whether the exact term is currently derivable. Call Close
// first to saturate.
func (s *System) Knows(t Term) bool {
	_, ok := s.known[t.key()]
	return ok
}

// KnowsUpdate reports whether the attacker derived the named update.
func (s *System) KnowsUpdate(name string) bool {
	return s.Knows(Atom{Kind: KUpdate, Name: name})
}

// KnowsPrime reports whether the attacker derived the named prime.
func (s *System) KnowsPrime(name string) bool {
	return s.Knows(Atom{Kind: KPrime, Name: name})
}

// Size returns the number of known terms (for diagnostics).
func (s *System) Size() int { return len(s.known) }

// Close saturates the knowledge base under the derivation rules.
func (s *System) Close() {
	for {
		if !s.step() {
			return
		}
	}
}

// step applies every rule once; reports whether anything new was learnt.
func (s *System) step() bool {
	grew := false
	add := func(t Term) {
		if _, ok := s.known[t.key()]; !ok {
			s.known[t.key()] = t
			grew = true
		}
	}

	snapshot := make([]Term, 0, len(s.known))
	for _, t := range s.known {
		snapshot = append(snapshot, t)
	}

	for _, t := range snapshot {
		switch v := t.(type) {
		case Sig:
			// Signatures are readable by anyone.
			for _, part := range v.Body {
				add(part)
			}
		case Enc:
			// Decryption requires the recipient's private key.
			if s.Knows(Priv(v.To)) {
				for _, part := range v.Body {
					add(part)
				}
			}
		case Prod:
			// Division: a product with exactly one unknown factor
			// reveals it (monitors "are not able to factorise it"
			// outright, §IV-B — but dividing out known primes is
			// elementary arithmetic).
			unknown := -1
			for i, f := range v.Factors {
				if !s.Knows(f) {
					if unknown >= 0 {
						unknown = -2
						break
					}
					unknown = i
				}
			}
			if unknown >= 0 {
				add(v.Factors[unknown])
			}
		case Hash:
			// Dictionary attack: with the key in hand, hash every
			// candidate combination and compare (§VI-A). Modelled
			// as: key derivable → the update factors drawn from the
			// candidate universe become known.
			if s.keyDerivable(v.Key) {
				for _, u := range hashFactors(v.U) {
					if a, ok := u.(Atom); ok && a.Kind == KUpdate && s.candidates[a.Name] {
						add(a)
					}
				}
			}
		}
	}
	return grew
}

// keyDerivable reports whether a hash key (atom or product) is fully known.
func (s *System) keyDerivable(k Term) bool {
	switch v := k.(type) {
	case Atom:
		return s.Knows(v)
	case Prod:
		if s.Knows(v) {
			// Knowing the product value alone does not allow the
			// dictionary attack unless every factor is known (the
			// attacker must hash candidates under the same
			// exponent, which requires the factors' values —
			// except that the full product value itself *can* be
			// used as an exponent directly).
			return true
		}
		for _, f := range v.Factors {
			if !s.Knows(f) {
				return false
			}
		}
		return true
	default:
		return s.Knows(k)
	}
}

// hashFactors flattens the hashed content into its update components.
func hashFactors(u Term) []Term {
	if p, ok := u.(Prod); ok {
		return p.Factors
	}
	return []Term{u}
}
