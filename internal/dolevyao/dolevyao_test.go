package dolevyao

import "testing"

// closeAndCheck builds, saturates and queries one scenario.
func attack(t *testing.T, sc Scenario, target int) bool {
	t.Helper()
	s := BuildPAGRound(sc)
	s.Close()
	return s.KnowsUpdate(UpdateName(target))
}

// TestCase1PassiveGlobalAttacker is the paper's case (1): the attacker
// listens to all communications and can replay/inject, but controls no
// node. "ProVerif proves that no attack exists" — and neither does our
// closure find one: no update and no prime is derivable.
func TestCase1PassiveGlobalAttacker(t *testing.T) {
	s := BuildPAGRound(Scenario{Preds: 3, Monitors: 3})
	s.Close()
	for i := 0; i < 3; i++ {
		if s.KnowsUpdate(UpdateName(i)) {
			t.Fatalf("passive attacker derived update %d", i)
		}
		if s.KnowsPrime(PrimeName(i)) {
			t.Fatalf("passive attacker derived prime %d", i)
		}
	}
}

// TestCase2BelowThreshold is case (2) below the threshold: coalitions of
// fewer nodes than needed cannot break the honest exchange A0→B.
func TestCase2BelowThreshold(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"one monitor alone", Scenario{Preds: 3, Monitors: 3, CorruptMons: []int{0}}},
		{"all monitors alone", Scenario{Preds: 3, Monitors: 3, CorruptMons: []int{0, 1, 2}}},
		{"one predecessor alone", Scenario{Preds: 3, Monitors: 3, CorruptPreds: []int{1}}},
		{"all other predecessors, no monitor", Scenario{Preds: 3, Monitors: 3, CorruptPreds: []int{1, 2}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if attack(t, c.sc, 0) {
				t.Fatal("coalition below threshold broke P1")
			}
		})
	}
}

// TestCase2AttackAtThreshold reproduces the attack ProVerif finds: a
// corrupted monitor holding the remainder product of a corrupted
// predecessor's exchange, with every predecessor outside {target, pivot}
// corrupted, reveals the honest exchange's prime and then — by the §VI-A
// dictionary attack — the update itself.
func TestCase2AttackAtThreshold(t *testing.T) {
	// f=3: target exchange 0 (honest A0). Pivot exchange 1: its
	// designated monitor M0 is corrupted (remainder p0·p2), and A2 is
	// corrupted (knows p2). Division yields p0; dictionary yields u0.
	sc := Scenario{
		Preds:        3,
		Monitors:     3,
		Designate:    func(pred int) int { return 0 }, // M0 gets all reports
		CorruptPreds: []int{2},
		CorruptMons:  []int{0},
	}
	s := BuildPAGRound(sc)
	s.Close()
	if !s.KnowsPrime(PrimeName(0)) {
		t.Fatal("threshold coalition failed to derive the prime")
	}
	if !s.KnowsUpdate(UpdateName(0)) {
		t.Fatal("threshold coalition failed the dictionary attack")
	}
}

// TestDesignationMatters: the same coalition without the helpful
// designation cannot reach the target exchange — but leaks the exchange
// whose remainder it can fully divide.
func TestDesignationMatters(t *testing.T) {
	// M0 is designated only for exchange 0 (the target's own): its
	// remainder p1·p2 contains no p0. With A2 corrupted, division
	// reveals p1 — exchange 1 leaks, exchange 0 stays private.
	sc := Scenario{
		Preds:    3,
		Monitors: 3,
		Designate: func(pred int) int {
			if pred == 0 {
				return 0
			}
			return 1 // other exchanges reported to honest M1
		},
		CorruptPreds: []int{2},
		CorruptMons:  []int{0},
	}
	s := BuildPAGRound(sc)
	s.Close()
	if s.KnowsUpdate(UpdateName(0)) {
		t.Fatal("target exchange leaked despite unhelpful designation")
	}
	if !s.KnowsUpdate(UpdateName(1)) {
		t.Fatal("divisible remainder should have leaked exchange 1")
	}
}

// TestLargerFanoutNeedsLargerCoalition: with f=5, the f=3 threshold
// coalition is no longer sufficient ("Increasing the value of f
// reinforces the security of the protocol", §VI-A).
func TestLargerFanoutNeedsLargerCoalition(t *testing.T) {
	small := Scenario{
		Preds:        5,
		Monitors:     5,
		Designate:    func(pred int) int { return 0 },
		CorruptPreds: []int{4},
		CorruptMons:  []int{0},
	}
	if attack(t, small, 0) {
		t.Fatal("f=3-sized coalition broke an f=5 system")
	}
	// The attack returns once all predecessors outside {target, pivot}
	// collude: preds {2,3,4} + monitor, pivot exchange 1.
	big := Scenario{
		Preds:        5,
		Monitors:     5,
		Designate:    func(pred int) int { return 0 },
		CorruptPreds: []int{2, 3, 4},
		CorruptMons:  []int{0},
	}
	if !attack(t, big, 0) {
		t.Fatal("full coalition failed against f=5")
	}
}

// TestEncryptionBlocksDecomposition: ciphertexts to honest nodes stay
// opaque ("the only limitation of the global and active opponent is that
// it is not able to invert encryptions", §III).
func TestEncryptionBlocksDecomposition(t *testing.T) {
	s := NewAttacker()
	secret := Atom{Kind: KData, Name: "secret"}
	s.Learn(Enc{To: "honest", Body: []Term{secret}})
	s.Close()
	if s.Knows(secret) {
		t.Fatal("encryption inverted")
	}
	// With the recipient's key, it opens.
	s.Learn(Priv("honest"))
	s.Close()
	if !s.Knows(secret) {
		t.Fatal("legitimate decryption failed")
	}
}

// TestSignaturesDoNotHide: signed content is readable.
func TestSignaturesDoNotHide(t *testing.T) {
	s := NewAttacker()
	content := Atom{Kind: KData, Name: "public"}
	s.Learn(Sig{By: "X", Body: []Term{content}})
	s.Close()
	if !s.Knows(content) {
		t.Fatal("signature hid its content")
	}
}

// TestDivisionNeedsAllButOne: a product with two unknown factors is
// opaque ("predecessors and monitors of a node receive the product of
// prime numbers, and are not able to factorise it", §IV-B).
func TestDivisionNeedsAllButOne(t *testing.T) {
	p1 := Atom{Kind: KPrime, Name: "x1"}
	p2 := Atom{Kind: KPrime, Name: "x2"}
	p3 := Atom{Kind: KPrime, Name: "x3"}

	s := NewAttacker()
	s.Learn(Prod{Factors: []Term{p1, p2, p3}})
	s.Learn(p3)
	s.Close()
	if s.Knows(p1) || s.Knows(p2) {
		t.Fatal("factored a two-unknown product")
	}
	s.Learn(p2)
	s.Close()
	if !s.Knows(p1) {
		t.Fatal("division with one unknown failed")
	}
}

// TestDictionaryNeedsKey: the observed hash plus the candidate list is
// not enough without the prime (§VI-A's "not really practical" case is
// modelled as impossible without the exponent).
func TestDictionaryNeedsKey(t *testing.T) {
	u := Atom{Kind: KUpdate, Name: "u"}
	p := Atom{Kind: KPrime, Name: "p"}
	s := NewAttacker()
	s.AddCandidate("u")
	s.Learn(Hash{U: u, Key: p})
	s.Close()
	if s.Knows(u) {
		t.Fatal("dictionary attack without the key")
	}
	s.Learn(p)
	s.Close()
	if !s.Knows(u) {
		t.Fatal("dictionary attack with the key failed")
	}
}

// TestDictionaryNeedsCandidate: an update outside the candidate universe
// cannot be recovered even with the key (hash preimage resistance).
func TestDictionaryNeedsCandidate(t *testing.T) {
	u := Atom{Kind: KUpdate, Name: "offlist"}
	p := Atom{Kind: KPrime, Name: "p"}
	s := NewAttacker()
	s.Learn(Hash{U: u, Key: p})
	s.Learn(p)
	s.Close()
	if s.Knows(u) {
		t.Fatal("recovered a non-candidate update")
	}
}

// TestProductKeyDictionary: a hash under a product key falls to the
// dictionary once every factor is known.
func TestProductKeyDictionary(t *testing.T) {
	u := Atom{Kind: KUpdate, Name: "u"}
	p1 := Atom{Kind: KPrime, Name: "p1"}
	p2 := Atom{Kind: KPrime, Name: "p2"}
	s := NewAttacker()
	s.AddCandidate("u")
	s.Learn(Hash{U: Prod{Factors: []Term{u}}, Key: Prod{Factors: []Term{p1, p2}}})
	s.Learn(p1)
	s.Close()
	if s.Knows(u) {
		t.Fatal("partial key sufficed")
	}
	s.Learn(p2)
	s.Close()
	if !s.Knows(u) {
		t.Fatal("full key dictionary failed")
	}
}

func TestSystemSize(t *testing.T) {
	s := NewAttacker()
	if s.Size() != 0 {
		t.Fatal("fresh attacker knows something")
	}
	s.Learn(Atom{Kind: KData, Name: "x"})
	s.Learn(Atom{Kind: KData, Name: "x"}) // dedup
	if s.Size() != 1 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestCanonicalKeysCommutative(t *testing.T) {
	a := Atom{Kind: KPrime, Name: "a"}
	b := Atom{Kind: KPrime, Name: "b"}
	p1 := Prod{Factors: []Term{a, b}}
	p2 := Prod{Factors: []Term{b, a}}
	if p1.key() != p2.key() {
		t.Fatal("product keys not commutative")
	}
}
