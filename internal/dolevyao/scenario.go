package dolevyao

import "fmt"

// Scenario describes the §VI-A verification setting: a correct node B
// receiving one update from each of its predecessors, with a set of
// monitors, under a coalition of corrupted predecessors and monitors.
type Scenario struct {
	// Preds is the number of predecessors (f in the paper; 3 is "the
	// simplest where the protocol can be proved secure").
	Preds int
	// Monitors is the number of monitors of B.
	Monitors int
	// Designate maps a predecessor exchange to the monitor index that
	// receives messages 6–7 for it. Defaults to i mod Monitors.
	Designate func(pred int) int
	// CorruptPreds / CorruptMons are coalition member indices.
	CorruptPreds []int
	CorruptMons  []int
}

// Names used by the builder.
func predName(i int) string   { return fmt.Sprintf("A%d", i) }
func monName(i int) string    { return fmt.Sprintf("M%d", i) }
func primeName(i int) string  { return fmt.Sprintf("p%d", i) }
func updateName(i int) string { return fmt.Sprintf("u%d", i) }

// UpdateName exposes the update naming for queries (exchange i carries
// update u<i>).
func UpdateName(i int) string { return updateName(i) }

// PrimeName exposes the prime naming for queries.
func PrimeName(i int) string { return primeName(i) }

// BuildPAGRound constructs the attacker knowledge for one PAG round under
// the scenario: the full network traffic of Figs 5–6 (global attacker)
// plus the coalition's private keys and secrets, plus the dictionary
// universe of candidate updates (§VI-A's attack precondition).
func BuildPAGRound(sc Scenario) *System {
	if sc.Designate == nil {
		sc.Designate = func(pred int) int { return pred % sc.Monitors }
	}
	s := NewAttacker()

	primes := make([]Term, sc.Preds)
	for i := 0; i < sc.Preds; i++ {
		primes[i] = Atom{Kind: KPrime, Name: primeName(i)}
	}
	fullKey := Prod{Factors: primes}

	for i := 0; i < sc.Preds; i++ {
		pred := predName(i)
		u := Atom{Kind: KUpdate, Name: updateName(i)}
		s.AddCandidate(u.Name)
		prime := primes[i]
		kPrev := Atom{Kind: KData, Name: "kprev_" + pred}
		att := Hash{U: u, Key: prime}
		ack := Hash{U: u, Key: kPrev}

		// Message 1: ⟨KeyRequest⟩_Ai (no secrets).
		s.Learn(Sig{By: pred, Body: []Term{Atom{Kind: KData, Name: "keyreq_" + pred}}})
		// Message 2: {⟨p_i⟩_B}_pk(Ai).
		s.Learn(Enc{To: pred, Body: []Term{Sig{By: "B", Body: []Term{prime}}}})
		// Message 3: {⟨u_i, K(R-1,Ai)⟩_Ai}_pk(B).
		s.Learn(Enc{To: "B", Body: []Term{Sig{By: pred, Body: []Term{u, kPrev}}}})
		// Message 4: ⟨H(u_i)_(p_i)⟩_Ai — attestation, in clear.
		s.Learn(Sig{By: pred, Body: []Term{att}})
		// Message 5/6: ⟨H(u_i)_(K(R-1,Ai))⟩_B — ack + its monitor copy.
		s.Learn(Sig{By: "B", Body: []Term{ack}})

		// Message 7: {⟨att, ∏_{k≠i} p_k⟩_B}_pk(designated monitor).
		rem := remainder(primes, i)
		d := monName(sc.Designate(i))
		s.Learn(Enc{To: d, Body: []Term{Sig{By: "B", Body: []Term{att, rem}}}})

		// Message 8: ⟨H(u_i)_(K(R,B))⟩_designated — lifted share.
		s.Learn(Sig{By: d, Body: []Term{Hash{U: u, Key: fullKey}}})
		// Message 9: relayed ack.
		s.Learn(Sig{By: d, Body: []Term{ack}})
	}

	// Coalition secrets.
	for _, i := range sc.CorruptPreds {
		pred := predName(i)
		s.Learn(Priv(pred))
		// A corrupted predecessor knows its own serve content outright.
		s.Learn(Atom{Kind: KUpdate, Name: updateName(i)})
		s.Learn(Atom{Kind: KData, Name: "kprev_" + pred})
	}
	for _, i := range sc.CorruptMons {
		s.Learn(Priv(monName(i)))
	}
	return s
}

// remainder builds ∏_{k≠i} p_k.
func remainder(primes []Term, i int) Prod {
	out := make([]Term, 0, len(primes)-1)
	for k, p := range primes {
		if k != i {
			out = append(out, p)
		}
	}
	return Prod{Factors: out}
}
