// Package streaming implements the video live-streaming application the
// paper evaluates PAG with (§VII-A): a source that releases a constant-
// bitrate stream as 938-byte updates grouped in windows of 40 packets,
// and a player that measures delivery continuity against the 10-second
// playout deadline.
package streaming

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/update"
)

// Injector is the protocol-node surface a source feeds (PAG, AcTinG and
// RAC nodes all provide it).
type Injector interface {
	InjectUpdates(us []update.Update)
}

// Source releases a constant-bitrate stream into a protocol node.
type Source struct {
	gen      *update.Generator
	target   Injector
	perRound int
	emitted  uint64
}

// NewSource builds a source for the given bitrate. updateBytes and ttl
// default to the paper's settings when zero (938 bytes, 10 rounds).
func NewSource(stream model.StreamID, signer update.Signer, target Injector,
	bitrateKbps, updateBytes int, ttl model.Round) (*Source, error) {
	if target == nil {
		return nil, fmt.Errorf("streaming: source needs a target node")
	}
	if bitrateKbps <= 0 {
		return nil, fmt.Errorf("streaming: invalid bitrate %d", bitrateKbps)
	}
	if updateBytes == 0 {
		updateBytes = model.UpdateBytes
	}
	if ttl == 0 {
		ttl = model.PlayoutDelayRounds
	}
	gen, err := update.NewGenerator(stream, signer, updateBytes, ttl)
	if err != nil {
		return nil, err
	}
	perRound := bitrateKbps * 1000 / 8 / updateBytes * model.RoundDurationSeconds
	if perRound < 1 {
		perRound = 1
	}
	return &Source{gen: gen, target: target, perRound: perRound}, nil
}

// PerRound returns how many updates the source releases each round.
func (s *Source) PerRound() int { return s.perRound }

// Emitted returns the total updates released so far.
func (s *Source) Emitted() uint64 { return s.emitted }

// Tick releases one round's worth of stream into the target node; wire it
// to the engine's OnRoundStart hook.
func (s *Source) Tick(r model.Round) error {
	us, err := s.gen.Emit(r, s.perRound)
	if err != nil {
		return fmt.Errorf("streaming: emitting round %v: %w", r, err)
	}
	s.target.InjectUpdates(us)
	s.emitted += uint64(len(us))
	return nil
}

// Player consumes deliveries on one node and computes playback metrics.
// It is safe for concurrent use (the TCP deployment delivers from reader
// goroutines).
type Player struct {
	stream model.StreamID

	mu        sync.Mutex
	delivered map[uint64]bool
	dupes     uint64
	maxSeq    uint64
	hasAny    bool
}

// NewPlayer builds a player for one stream.
func NewPlayer(stream model.StreamID) *Player {
	return &Player{stream: stream, delivered: make(map[uint64]bool)}
}

// OnDeliver is the node-config callback.
func (p *Player) OnDeliver(u update.Update) {
	if u.ID.Stream != p.stream {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.delivered[u.ID.Seq] {
		p.dupes++
		return
	}
	p.delivered[u.ID.Seq] = true
	if u.ID.Seq > p.maxSeq {
		p.maxSeq = u.ID.Seq
	}
	p.hasAny = true
}

// Delivered returns the number of distinct chunks played.
func (p *Player) Delivered() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(len(p.delivered))
}

// Duplicates returns duplicate delivery attempts (should be zero: the
// store deduplicates before the player).
func (p *Player) Duplicates() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dupes
}

// ContinuityRatio returns the fraction of chunks [0, emittedThrough)
// delivered — the stream quality a viewer experienced.
func (p *Player) ContinuityRatio(emittedThrough uint64) float64 {
	if emittedThrough == 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	got := 0
	for seq := uint64(0); seq < emittedThrough; seq++ {
		if p.delivered[seq] {
			got++
		}
	}
	return float64(got) / float64(emittedThrough)
}

// DeliveredInRange counts the distinct chunks of [from, to) delivered —
// the windowed form of ContinuityRatio, used for per-epoch continuity and
// for nodes that joined mid-stream (whose fair denominator starts at their
// join point).
func (p *Player) DeliveredInRange(from, to uint64) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var got uint64
	for seq := from; seq < to; seq++ {
		if p.delivered[seq] {
			got++
		}
	}
	return got
}

// CompleteWindows counts fully-delivered windows of the given size among
// the first emittedThrough chunks — the paper's source "groups packets in
// windows of 40 packets" (§VII-A), and a window with a gap shows as a
// playback glitch.
func (p *Player) CompleteWindows(windowSize int, emittedThrough uint64) (complete, total int) {
	if windowSize <= 0 {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for start := uint64(0); start+uint64(windowSize) <= emittedThrough; start += uint64(windowSize) {
		total++
		ok := true
		for s := start; s < start+uint64(windowSize); s++ {
			if !p.delivered[s] {
				ok = false
				break
			}
		}
		if ok {
			complete++
		}
	}
	return complete, total
}
