package streaming

import (
	"testing"

	"repro/internal/model"
	"repro/internal/update"
)

type fakeSigner struct{}

func (fakeSigner) Sign(msg []byte) ([]byte, error) { return []byte{1}, nil }

type fakeInjector struct{ got []update.Update }

func (f *fakeInjector) InjectUpdates(us []update.Update) { f.got = append(f.got, us...) }

func TestSourceRate(t *testing.T) {
	inj := &fakeInjector{}
	// 300 kbps at 938 B/update → 39 updates/round (the paper's 240p).
	s, err := NewSource(0, fakeSigner{}, inj, 300, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.PerRound() != 39 {
		t.Fatalf("PerRound = %d, want 39", s.PerRound())
	}
	if err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if len(inj.got) != 39 || s.Emitted() != 39 {
		t.Fatalf("injected %d, emitted %d", len(inj.got), s.Emitted())
	}
	if len(inj.got[0].Payload) != model.UpdateBytes {
		t.Fatalf("payload %d bytes", len(inj.got[0].Payload))
	}
	if inj.got[0].Deadline != 1+model.PlayoutDelayRounds {
		t.Fatalf("deadline %v", inj.got[0].Deadline)
	}
}

func TestSourceTinyBitrateStillEmits(t *testing.T) {
	inj := &fakeInjector{}
	s, err := NewSource(0, fakeSigner{}, inj, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.PerRound() != 1 {
		t.Fatalf("PerRound = %d", s.PerRound())
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := NewSource(0, fakeSigner{}, nil, 300, 0, 0); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := NewSource(0, fakeSigner{}, &fakeInjector{}, 0, 0, 0); err == nil {
		t.Fatal("zero bitrate accepted")
	}
}

func mkU(seq uint64) update.Update {
	return update.Update{ID: model.UpdateID{Stream: 0, Seq: seq}}
}

func TestPlayerContinuity(t *testing.T) {
	p := NewPlayer(0)
	for _, seq := range []uint64{0, 1, 2, 4} { // gap at 3
		p.OnDeliver(mkU(seq))
	}
	if p.Delivered() != 4 {
		t.Fatalf("Delivered = %d", p.Delivered())
	}
	if got := p.ContinuityRatio(5); got != 0.8 {
		t.Fatalf("ContinuityRatio = %v", got)
	}
	if got := p.ContinuityRatio(0); got != 0 {
		t.Fatalf("empty ratio = %v", got)
	}
}

func TestPlayerIgnoresOtherStreams(t *testing.T) {
	p := NewPlayer(0)
	p.OnDeliver(update.Update{ID: model.UpdateID{Stream: 9, Seq: 0}})
	if p.Delivered() != 0 {
		t.Fatal("other stream delivered")
	}
}

func TestPlayerDuplicates(t *testing.T) {
	p := NewPlayer(0)
	p.OnDeliver(mkU(1))
	p.OnDeliver(mkU(1))
	if p.Duplicates() != 1 || p.Delivered() != 1 {
		t.Fatalf("dupes %d delivered %d", p.Duplicates(), p.Delivered())
	}
}

func TestCompleteWindows(t *testing.T) {
	p := NewPlayer(0)
	// Deliver chunks 0..7 except 5: window [0,4) complete, [4,8) not.
	for seq := uint64(0); seq < 8; seq++ {
		if seq != 5 {
			p.OnDeliver(mkU(seq))
		}
	}
	complete, total := p.CompleteWindows(4, 8)
	if total != 2 || complete != 1 {
		t.Fatalf("windows %d/%d, want 1/2", complete, total)
	}
	if c, tot := p.CompleteWindows(0, 8); c != 0 || tot != 0 {
		t.Fatal("zero window size should be empty")
	}
}
