package sim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/transport"
)

// phaseRecorder records the phase call sequence.
type phaseRecorder struct {
	id    model.NodeID
	calls *[]string
	ep    transport.Endpoint
	peer  model.NodeID
}

func (p *phaseRecorder) ID() model.NodeID { return p.id }

func (p *phaseRecorder) BeginRound(r model.Round) {
	*p.calls = append(*p.calls, "begin")
	if p.ep != nil {
		_ = p.ep.Send(p.peer, 1, []byte("hello"))
	}
}
func (p *phaseRecorder) MidRound(r model.Round)   { *p.calls = append(*p.calls, "mid") }
func (p *phaseRecorder) EndRound(r model.Round)   { *p.calls = append(*p.calls, "end") }
func (p *phaseRecorder) CloseRound(r model.Round) { *p.calls = append(*p.calls, "close") }

func TestEnginePhaseOrder(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	var calls []string
	n1 := &phaseRecorder{id: 1, calls: &calls}
	e.Add(n1)
	if _, err := net.Register(1, func(transport.Message) {}); err != nil {
		t.Fatal(err)
	}
	e.RunRound()
	want := []string{"begin", "mid", "end", "close"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
	if e.Round() != 1 {
		t.Fatalf("Round = %v", e.Round())
	}
}

func TestEngineHooksRunFirst(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	var calls []string
	e.OnRoundStart(func(r model.Round) { calls = append(calls, "hook") })
	e.Add(&phaseRecorder{id: 1, calls: &calls})
	if _, err := net.Register(1, func(transport.Message) {}); err != nil {
		t.Fatal(err)
	}
	e.RunRound()
	if calls[0] != "hook" {
		t.Fatalf("hook did not run first: %v", calls)
	}
}

func TestEngineDeliversBetweenPhases(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	var calls []string
	received := 0
	if _, err := net.Register(2, func(transport.Message) { received++ }); err != nil {
		t.Fatal(err)
	}
	ep, err := net.Register(1, func(transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	e.Add(&phaseRecorder{id: 1, calls: &calls, ep: ep, peer: 2})
	e.RunRound()
	if received != 1 {
		t.Fatalf("message not delivered during the round: %d", received)
	}
}

func TestBandwidthMeasurement(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	var calls []string
	if _, err := net.Register(2, func(transport.Message) {}); err != nil {
		t.Fatal(err)
	}
	ep, err := net.Register(1, func(transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 sends 1000 payload bytes to node 2 every round.
	sender := &phaseRecorder{id: 1, calls: &calls, ep: ep, peer: 2}
	e.Add(sender)
	e.Add(&phaseRecorder{id: 2, calls: &calls})

	e.Run(2) // warm-up, unmeasured
	if e.NodeBandwidthKbps(1) != 0 {
		t.Fatal("bandwidth reported before StartMeasuring")
	}
	e.StartMeasuring()
	e.Run(4)

	// Per round: one message of (40 header + 5 payload) bytes. Sender
	// bandwidth = (out+in)/2 = 45/2 bytes/s = 0.18 kbps.
	want := float64(45) * 8 / 1000 / 2
	if got := e.NodeBandwidthKbps(1); got != want {
		t.Fatalf("sender bandwidth %v, want %v", got, want)
	}
	if got := e.NodeBandwidthKbps(2); got != want {
		t.Fatalf("receiver bandwidth %v, want %v", got, want)
	}

	sample := e.BandwidthSample()
	if sample.Len() != 2 {
		t.Fatalf("sample size %d", sample.Len())
	}
	sample = e.BandwidthSample(1)
	if sample.Len() != 1 {
		t.Fatalf("excluding sample size %d", sample.Len())
	}
}

func TestEngineString(t *testing.T) {
	e := NewEngine(transport.NewMemNet())
	if e.String() == "" || e.Nodes() != 0 {
		t.Fatal("String/Nodes wrong")
	}
}
