// Package sim drives round-phased protocol nodes over the in-memory
// network: it is the reproduction's OMNeT++ analogue (§VII-A, "Simulations
// settings"). The engine advances rounds in four phases with full message
// delivery between them, keeping every run deterministic under a fixed
// seed, and collects the per-node bandwidth statistics the paper plots.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Protocol is a round-phased protocol node. PAG nodes, AcTinG nodes and
// RAC nodes all implement it.
type Protocol interface {
	// ID returns the node's identifier.
	ID() model.NodeID
	// BeginRound opens a round (send opening messages).
	BeginRound(r model.Round)
	// MidRound runs after the exchange traffic quiesced (monitor
	// reports, accusations, audits).
	MidRound(r model.Round)
	// EndRound runs verification passes (may open investigations).
	EndRound(r model.Round)
	// CloseRound judges, delivers to the application and cleans up.
	CloseRound(r model.Round)
}

// RoundHook runs at the start of each round, before nodes act — the
// source's injection point.
type RoundHook func(r model.Round)

// Event is a scheduled action consulted at the top of its round, before
// hooks and node phases run — the scenario engine's injection point.
type Event func(r model.Round)

// Engine coordinates nodes and the network.
type Engine struct {
	net   *transport.MemNet
	nodes []Protocol
	round model.Round
	hooks []RoundHook

	// events holds scheduled actions keyed by the round they fire at.
	events map[model.Round][]Event

	// measuring controls whether per-round traffic is being recorded.
	baseline map[model.NodeID]transport.Traffic
	measured model.Round // rounds measured so far
}

// NewEngine creates an engine over a MemNet.
func NewEngine(net *transport.MemNet) *Engine {
	return &Engine{net: net}
}

// Add registers a protocol node; nodes act in registration order, which
// must therefore be deterministic for reproducible runs.
func (e *Engine) Add(p Protocol) { e.nodes = append(e.nodes, p) }

// Remove detaches a node immediately (it stops receiving phase calls);
// it reports whether the node was present. Traffic counters survive in
// the network layer.
func (e *Engine) Remove(id model.NodeID) bool {
	for i, n := range e.nodes {
		if n.ID() == id {
			e.nodes = append(e.nodes[:i], e.nodes[i+1:]...)
			return true
		}
	}
	return false
}

// Has reports whether a node is currently attached.
func (e *Engine) Has(id model.NodeID) bool {
	for _, n := range e.nodes {
		if n.ID() == id {
			return true
		}
	}
	return false
}

// ScheduleAt queues fn to run at the top of round r, before hooks and node
// phases. Events scheduled for rounds that already completed never fire.
func (e *Engine) ScheduleAt(r model.Round, fn Event) {
	if e.events == nil {
		e.events = make(map[model.Round][]Event)
	}
	e.events[r] = append(e.events[r], fn)
}

// AddAt schedules a node to join the simulation at the top of round r.
func (e *Engine) AddAt(r model.Round, p Protocol) {
	e.ScheduleAt(r, func(model.Round) { e.Add(p) })
}

// RemoveAt schedules a node's detachment at the top of round r.
func (e *Engine) RemoveAt(r model.Round, id model.NodeID) {
	e.ScheduleAt(r, func(model.Round) { e.Remove(id) })
}

// Nodes returns the registered node count.
func (e *Engine) Nodes() int { return len(e.nodes) }

// Round returns the last completed round (0 before the first).
func (e *Engine) Round() model.Round { return e.round }

// OnRoundStart registers a hook invoked at the top of every round.
func (e *Engine) OnRoundStart(h RoundHook) { e.hooks = append(e.hooks, h) }

// RunRound advances one round through the four phases, delivering all
// pending traffic between phases.
func (e *Engine) RunRound() {
	r := e.round + 1
	e.net.BeginRound()
	if evs, ok := e.events[r]; ok {
		delete(e.events, r)
		for _, ev := range evs {
			ev(r)
		}
	}
	for _, h := range e.hooks {
		h(r)
	}
	for _, n := range e.nodes {
		n.BeginRound(r)
	}
	e.net.DeliverAll()
	for _, n := range e.nodes {
		n.MidRound(r)
	}
	e.net.DeliverAll()
	for _, n := range e.nodes {
		n.EndRound(r)
	}
	e.net.DeliverAll()
	for _, n := range e.nodes {
		n.CloseRound(r)
	}
	e.net.DeliverAll()
	e.round = r
	if e.baseline != nil {
		e.measured++
	}
}

// Run advances n rounds.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.RunRound()
	}
}

// StartMeasuring snapshots traffic counters; bandwidth statistics cover
// the rounds run afterwards (warm-up rounds are thereby excluded, as in
// the paper's steady-state measurements).
func (e *Engine) StartMeasuring() {
	e.baseline = make(map[model.NodeID]transport.Traffic, len(e.nodes))
	for _, n := range e.nodes {
		e.baseline[n.ID()] = e.net.TrafficOf(n.ID())
	}
	e.measured = 0
}

// NodeBandwidthKbps returns one node's average bandwidth over the measured
// window in kbps. Each round is one second (§VII-A), and the per-node
// consumption is the mean of upload and download (dissemination traffic is
// symmetric in aggregate).
func (e *Engine) NodeBandwidthKbps(id model.NodeID) float64 {
	if e.measured == 0 {
		return 0
	}
	tr := e.net.TrafficOf(id)
	if base, ok := e.baseline[id]; ok {
		tr = tr.Sub(base)
	}
	bytes := float64(tr.BytesIn+tr.BytesOut) / 2
	seconds := float64(e.measured) * model.RoundDurationSeconds
	return bytes * 8 / 1000 / seconds
}

// BandwidthSample returns the per-node bandwidth distribution over the
// measured window, excluding the listed nodes (the source is conventionally
// excluded, as its upload profile is not a client's).
func (e *Engine) BandwidthSample(exclude ...model.NodeID) stats.Sample {
	skip := make(map[model.NodeID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	xs := make([]float64, 0, len(e.nodes))
	ids := make([]model.NodeID, 0, len(e.nodes))
	for _, n := range e.nodes {
		ids = append(ids, n.ID())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if skip[id] {
			continue
		}
		xs = append(xs, e.NodeBandwidthKbps(id))
	}
	return stats.NewSample(xs)
}

// String summarises engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{nodes: %d, round: %v}", len(e.nodes), e.round)
}
