// Package sim drives round-phased protocol nodes over the in-memory
// network: it is the reproduction's OMNeT++ analogue (§VII-A, "Simulations
// settings"). The engine advances rounds in four phases with full message
// delivery between them, keeping every run deterministic under a fixed
// seed, and collects the per-node bandwidth statistics the paper plots.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Protocol is a round-phased protocol node. PAG nodes, AcTinG nodes and
// RAC nodes all implement it.
type Protocol interface {
	// ID returns the node's identifier.
	ID() model.NodeID
	// BeginRound opens a round (send opening messages).
	BeginRound(r model.Round)
	// MidRound runs after the exchange traffic quiesced (monitor
	// reports, accusations, audits).
	MidRound(r model.Round)
	// EndRound runs verification passes (may open investigations).
	EndRound(r model.Round)
	// CloseRound judges, delivers to the application and cleans up.
	CloseRound(r model.Round)
}

// RoundHook runs at the start of each round, before nodes act — the
// source's injection point.
type RoundHook func(r model.Round)

// Event is a scheduled action consulted at the top of its round, before
// hooks and node phases run — the scenario engine's injection point.
type Event func(r model.Round)

// Stepper is the round-driving abstraction a session runs on: the serial
// Engine below and the sharded parallel engine (internal/engine) both
// implement it, and — because MemNet merges sends at phase barriers in a
// canonical order — both produce byte-identical runs from the same seed.
//
// Mutating calls (Add, Remove, ScheduleAt, OnRoundStart, StartMeasuring)
// are only legal between rounds or from round-top events/hooks, which
// every implementation runs single-threaded.
type Stepper interface {
	// Add registers a protocol node.
	Add(p Protocol)
	// Remove detaches a node immediately; it reports whether the node was
	// present.
	Remove(id model.NodeID) bool
	// Has reports whether a node is currently attached.
	Has(id model.NodeID) bool
	// ScheduleAt queues fn to run at the top of round r.
	ScheduleAt(r model.Round, fn Event)
	// AddAt schedules a node to join at the top of round r.
	AddAt(r model.Round, p Protocol)
	// RemoveAt schedules a node's detachment at the top of round r.
	RemoveAt(r model.Round, id model.NodeID)
	// Nodes returns the registered node count.
	Nodes() int
	// Round returns the last completed round (0 before the first).
	Round() model.Round
	// OnRoundStart registers a hook invoked at the top of every round.
	OnRoundStart(h RoundHook)
	// RunRound advances one round through the four phases.
	RunRound()
	// Run advances n rounds.
	Run(n int)
	// StartMeasuring snapshots traffic counters to open the bandwidth
	// measurement window.
	StartMeasuring()
	// NodeBandwidthKbps returns one node's average bandwidth over the
	// measured window in kbps.
	NodeBandwidthKbps(id model.NodeID) float64
	// BandwidthSample returns the per-node bandwidth distribution over
	// the measured window, excluding the listed nodes.
	BandwidthSample(exclude ...model.NodeID) stats.Sample
}

var _ Stepper = (*Engine)(nil)

// Roster is the node, hook and event bookkeeping shared by the round
// engines. It implements the non-stepping half of Stepper; the serial
// engine below and the parallel engine (internal/engine) both embed it,
// so registration and scheduling semantics cannot drift apart between
// them — which the byte-identical guarantee depends on.
type Roster struct {
	nodes []Protocol
	hooks []RoundHook

	// events holds scheduled actions keyed by the round they fire at.
	events map[model.Round][]Event
}

// Add registers a protocol node; nodes act in registration order, which
// must therefore be deterministic for reproducible runs.
func (ro *Roster) Add(p Protocol) { ro.nodes = append(ro.nodes, p) }

// Remove detaches a node immediately (it stops receiving phase calls);
// it reports whether the node was present. Traffic counters survive in
// the network layer.
func (ro *Roster) Remove(id model.NodeID) bool {
	for i, n := range ro.nodes {
		if n.ID() == id {
			ro.nodes = append(ro.nodes[:i], ro.nodes[i+1:]...)
			return true
		}
	}
	return false
}

// Has reports whether a node is currently attached.
func (ro *Roster) Has(id model.NodeID) bool {
	for _, n := range ro.nodes {
		if n.ID() == id {
			return true
		}
	}
	return false
}

// ScheduleAt queues fn to run at the top of round r, before hooks and node
// phases. Events scheduled for rounds that already completed never fire.
func (ro *Roster) ScheduleAt(r model.Round, fn Event) {
	if ro.events == nil {
		ro.events = make(map[model.Round][]Event)
	}
	ro.events[r] = append(ro.events[r], fn)
}

// AddAt schedules a node to join the simulation at the top of round r.
func (ro *Roster) AddAt(r model.Round, p Protocol) {
	ro.ScheduleAt(r, func(model.Round) { ro.Add(p) })
}

// RemoveAt schedules a node's detachment at the top of round r.
func (ro *Roster) RemoveAt(r model.Round, id model.NodeID) {
	ro.ScheduleAt(r, func(model.Round) { ro.Remove(id) })
}

// Nodes returns the registered node count.
func (ro *Roster) Nodes() int { return len(ro.nodes) }

// OnRoundStart registers a hook invoked at the top of every round.
func (ro *Roster) OnRoundStart(h RoundHook) { ro.hooks = append(ro.hooks, h) }

// Members returns the attached nodes in registration order. The slice is
// shared with the roster: callers iterate it, they do not mutate it.
func (ro *Roster) Members() []Protocol { return ro.nodes }

// OpenRound fires round r's due events and then every hook, in
// registration order — the single-threaded round-top sequence both
// engines run before any node acts.
func (ro *Roster) OpenRound(r model.Round) {
	if evs, ok := ro.events[r]; ok {
		delete(ro.events, r)
		for _, ev := range evs {
			ev(r)
		}
	}
	for _, h := range ro.hooks {
		h(r)
	}
}

// Meter is the steady-state bandwidth measurement shared by the round
// engines: a snapshot of traffic counters at StartMeasuring, so warm-up
// rounds are excluded, as in the paper's steady-state numbers.
type Meter struct {
	net      transport.SteppedNetwork
	baseline map[model.NodeID]transport.Traffic
	measured model.Round // rounds measured so far
}

// NewMeter creates a meter over the network the engine runs on.
func NewMeter(net transport.SteppedNetwork) Meter { return Meter{net: net} }

// Start snapshots the members' traffic counters; bandwidth statistics
// cover the rounds run afterwards.
func (m *Meter) Start(members []Protocol) {
	m.baseline = make(map[model.NodeID]transport.Traffic, len(members))
	for _, n := range members {
		m.baseline[n.ID()] = m.net.TrafficOf(n.ID())
	}
	m.measured = 0
}

// RoundDone counts one completed round into the measured window (a no-op
// before Start).
func (m *Meter) RoundDone() {
	if m.baseline != nil {
		m.measured++
	}
}

// NodeBandwidthKbps returns one node's average bandwidth over the measured
// window in kbps. Each round is one second (§VII-A), and the per-node
// consumption is the mean of upload and download (dissemination traffic is
// symmetric in aggregate).
func (m *Meter) NodeBandwidthKbps(id model.NodeID) float64 {
	if m.measured == 0 {
		return 0
	}
	tr := m.net.TrafficOf(id)
	if base, ok := m.baseline[id]; ok {
		tr = tr.Sub(base)
	}
	bytes := float64(tr.BytesIn+tr.BytesOut) / 2
	seconds := float64(m.measured) * model.RoundDurationSeconds
	return bytes * 8 / 1000 / seconds
}

// Sample returns the members' bandwidth distribution over the measured
// window in ascending id order, excluding the listed nodes (the source is
// conventionally excluded, as its upload profile is not a client's).
func (m *Meter) Sample(members []Protocol, exclude ...model.NodeID) stats.Sample {
	skip := make(map[model.NodeID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	ids := make([]model.NodeID, 0, len(members))
	for _, n := range members {
		ids = append(ids, n.ID())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	xs := make([]float64, 0, len(ids))
	for _, id := range ids {
		if skip[id] {
			continue
		}
		xs = append(xs, m.NodeBandwidthKbps(id))
	}
	return stats.NewSample(xs)
}

// Engine coordinates nodes and the network, stepping every node in one
// goroutine. It runs over any SteppedNetwork: MemNet (deterministic
// simulation) or TCPNet in stepped mode (real sockets, quiescence-based
// phase barriers).
type Engine struct {
	Roster
	meter Meter
	net   transport.SteppedNetwork
	round model.Round

	// Observability (nil without a registry): completed rounds and
	// handler deliveries are deterministic counts shared by both round
	// engines under the same metric names, so serial and parallel runs
	// of the same seed snapshot identically; the round-duration
	// histogram is wall-clock (ClassTimed).
	roundsC     *obs.Counter
	deliveriesC *obs.Counter
	roundSpans  *obs.Histogram
	trace       *obs.Tracer
}

// NewEngine creates an engine over a stepped network.
func NewEngine(net transport.SteppedNetwork) *Engine {
	return &Engine{net: net, meter: NewMeter(net)}
}

// Instrument attaches the observability registry and tracer (either may
// be nil): counters plus round_begin/round_end trace events bracketing
// every round, identical in form to the parallel engine's.
func (e *Engine) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.roundsC = reg.Counter("pag_engine_rounds_total")
	e.deliveriesC = reg.Counter("pag_engine_deliveries_total")
	e.roundSpans = reg.Histogram("pag_engine_round_seconds", obs.ClassTimed, nil)
	e.trace = tr
}

// Round returns the last completed round (0 before the first).
func (e *Engine) Round() model.Round { return e.round }

// RunRound advances one round through the four phases, delivering all
// pending traffic between phases.
func (e *Engine) RunRound() {
	span := e.roundSpans.SpanStart()
	r := e.round + 1
	e.net.BeginRound()
	e.OpenRound(r)
	if e.trace != nil {
		e.trace.Emit("round_begin", obs.F("round", r), obs.F("nodes", e.Nodes()))
	}
	delivered := 0
	for _, n := range e.Members() {
		n.BeginRound(r)
	}
	delivered += e.net.DeliverAll()
	for _, n := range e.Members() {
		n.MidRound(r)
	}
	delivered += e.net.DeliverAll()
	for _, n := range e.Members() {
		n.EndRound(r)
	}
	delivered += e.net.DeliverAll()
	for _, n := range e.Members() {
		n.CloseRound(r)
	}
	delivered += e.net.DeliverAll()
	e.round = r
	e.meter.RoundDone()
	e.roundsC.Inc()
	e.deliveriesC.Add(uint64(delivered))
	if e.trace != nil {
		e.trace.Emit("round_end", obs.F("round", r), obs.F("delivered", delivered))
		e.trace.Flush() // single-threaded point: deterministic drain order
	}
	e.roundSpans.SpanEnd(span)
}

// Run advances n rounds.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.RunRound()
	}
}

// StartMeasuring opens the steady-state measurement window (warm-up
// rounds before it are excluded, as in the paper's measurements).
func (e *Engine) StartMeasuring() { e.meter.Start(e.Members()) }

// NodeBandwidthKbps returns one node's average bandwidth over the
// measured window in kbps.
func (e *Engine) NodeBandwidthKbps(id model.NodeID) float64 {
	return e.meter.NodeBandwidthKbps(id)
}

// BandwidthSample returns the per-node bandwidth distribution over the
// measured window, excluding the listed nodes.
func (e *Engine) BandwidthSample(exclude ...model.NodeID) stats.Sample {
	return e.meter.Sample(e.Members(), exclude...)
}

// String summarises engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{nodes: %d, round: %v}", e.Nodes(), e.round)
}
