package sim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/transport"
)

func TestScheduleAtRunsBeforeHooksAndPhases(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	var calls []string
	e.OnRoundStart(func(model.Round) { calls = append(calls, "hook") })
	e.Add(&phaseRecorder{id: 1, calls: &calls})
	e.ScheduleAt(2, func(r model.Round) { calls = append(calls, "event") })
	e.Run(2)
	want := []string{
		"hook", "begin", "mid", "end", "close",
		"event", "hook", "begin", "mid", "end", "close",
	}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func TestAddAtRemoveAt(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	var calls1, calls2 []string
	e.Add(&phaseRecorder{id: 1, calls: &calls1})
	e.AddAt(3, &phaseRecorder{id: 2, calls: &calls2})
	e.RemoveAt(4, 1)

	e.Run(2)
	if e.Nodes() != 1 || len(calls2) != 0 {
		t.Fatalf("node 2 active before its join round: %d nodes", e.Nodes())
	}
	e.RunRound() // round 3: node 2 joins
	if e.Nodes() != 2 || len(calls2) != 4 {
		t.Fatalf("node 2 missing after join: %d nodes, %d calls", e.Nodes(), len(calls2))
	}
	e.RunRound() // round 4: node 1 removed before phases
	if e.Nodes() != 1 || e.Has(1) || !e.Has(2) {
		t.Fatalf("node 1 still attached after RemoveAt")
	}
	if len(calls1) != 3*4 {
		t.Fatalf("node 1 ran %d phase calls, want 12 (3 rounds)", len(calls1))
	}
}

func TestRemoveUnknownNode(t *testing.T) {
	e := NewEngine(transport.NewMemNet())
	e.Add(&phaseRecorder{id: 1, calls: new([]string)})
	if e.Remove(9) {
		t.Fatal("removed a node that was never added")
	}
	if !e.Remove(1) || e.Remove(1) {
		t.Fatal("Remove(1) bookkeeping wrong")
	}
}

func TestEngineResetsUploadBudgets(t *testing.T) {
	net := transport.NewMemNet()
	e := NewEngine(net)
	delivered := 0
	if _, err := net.Register(2, func(transport.Message) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	ep, err := net.Register(1, func(transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	size := uint64(transport.Message{Payload: []byte("hello")}.WireSize())
	net.SetUploadCap(1, size) // one message per round
	e.Add(&phaseRecorder{id: 1, calls: new([]string), ep: ep, peer: 2})
	e.Run(3)
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3 (one per round under the cap)", delivered)
	}
}
