package update

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

type fakeSigner struct{ calls int }

func (f *fakeSigner) Sign(msg []byte) ([]byte, error) {
	f.calls++
	return []byte{0x51, byte(len(msg))}, nil
}

func mkUpdate(seq uint64, deadline model.Round) Update {
	return Update{
		ID:       model.UpdateID{Stream: 1, Seq: seq},
		Deadline: deadline,
		Payload:  []byte{byte(seq), 0xFF},
	}
}

func TestCanonicalBytesDeterministic(t *testing.T) {
	u := mkUpdate(7, 12)
	if !bytes.Equal(u.CanonicalBytes(), u.CanonicalBytes()) {
		t.Fatal("canonical bytes not deterministic")
	}
}

func TestCanonicalBytesDistinguishes(t *testing.T) {
	u1 := mkUpdate(7, 12)
	u2 := mkUpdate(8, 12)
	u3 := mkUpdate(7, 13)
	u4 := mkUpdate(7, 12)
	u4.Payload = []byte{9, 9}
	for i, other := range []Update{u2, u3, u4} {
		if bytes.Equal(u1.CanonicalBytes(), other.CanonicalBytes()) {
			t.Fatalf("case %d: distinct updates share canonical bytes", i)
		}
	}
}

func TestCanonicalBytesProperty(t *testing.T) {
	f := func(seq uint64, deadline uint32, payload []byte) bool {
		u := Update{
			ID:       model.UpdateID{Stream: 3, Seq: seq},
			Deadline: model.Round(deadline),
			Payload:  payload,
		}
		b := u.CanonicalBytes()
		return len(b) == 4+8+8+4+len(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpiry(t *testing.T) {
	u := mkUpdate(1, 10)
	if u.Expired(10) {
		t.Fatal("update expired at its own deadline")
	}
	if !u.Expired(11) {
		t.Fatal("update not expired after deadline")
	}
	if !u.ExpiresNextRound(10) {
		t.Fatal("forwarding at r=10 with deadline 10 should be expiring-list")
	}
	if u.ExpiresNextRound(9) {
		t.Fatal("deadline 10 at r=9 should still be forwardable")
	}
}

func TestStoreAddAndMultiplicity(t *testing.T) {
	s := NewStore()
	u := mkUpdate(1, 20)

	if !s.Add(u, 5, 1, true) {
		t.Fatal("first Add should report new")
	}
	if s.Add(u, 6, 3, false) {
		t.Fatal("second Add should report duplicate")
	}
	e := s.Get(u.ID)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.Count != 4 {
		t.Fatalf("Count = %d, want 4", e.Count)
	}
	if e.Received != 5 {
		t.Fatalf("Received = %v, want 5 (first reception)", e.Received)
	}
	if !e.Forwardable {
		t.Fatal("Forwardable must not be narrowed by a later expiring copy")
	}
	if s.Len() != 1 || !s.Has(u.ID) {
		t.Fatal("store bookkeeping wrong")
	}
}

func TestStoreZeroCountBecomesOne(t *testing.T) {
	s := NewStore()
	s.Add(mkUpdate(1, 20), 1, 0, true)
	if got := s.Get(model.UpdateID{Stream: 1, Seq: 1}).Count; got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestStoreForwardableWidening(t *testing.T) {
	s := NewStore()
	u := mkUpdate(2, 20)
	s.Add(u, 1, 1, false)
	if s.Get(u.ID).Forwardable {
		t.Fatal("expiring copy should not be forwardable")
	}
	s.Add(u, 1, 1, true)
	if !s.Get(u.ID).Forwardable {
		t.Fatal("forwardable copy should widen")
	}
}

func TestReceivedInOrdering(t *testing.T) {
	s := NewStore()
	s.Add(mkUpdate(9, 20), 3, 1, true)
	s.Add(mkUpdate(2, 20), 3, 1, true)
	s.Add(mkUpdate(5, 20), 4, 1, true) // other round
	got := s.ReceivedIn(3)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Update.ID.Seq != 2 || got[1].Update.ID.Seq != 9 {
		t.Fatal("entries not in canonical order")
	}
	if len(s.ReceivedIn(99)) != 0 {
		t.Fatal("unknown round should be empty")
	}
}

func TestOwnedInWindow(t *testing.T) {
	s := NewStore()
	for seq, round := range map[uint64]model.Round{1: 1, 2: 2, 3: 3, 4: 4, 5: 5} {
		s.Add(mkUpdate(seq, 50), round, 1, true)
	}
	got := s.OwnedInWindow(5, 4) // rounds 2..5
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Update.ID.Less(got[i].Update.ID) {
			t.Fatal("window not in canonical order")
		}
	}
	// Window larger than history must not underflow.
	got = s.OwnedInWindow(2, 10)
	if len(got) != 2 {
		t.Fatalf("early-round window len = %d, want 2", len(got))
	}
}

func TestUndelivered(t *testing.T) {
	s := NewStore()
	s.Add(mkUpdate(1, 5), 1, 1, true)
	s.Add(mkUpdate(2, 9), 1, 1, true)
	got := s.Undelivered(5)
	if len(got) != 1 || got[0].Update.ID.Seq != 1 {
		t.Fatalf("Undelivered(5) = %v entries", len(got))
	}
	got[0].Delivered = true
	if len(s.Undelivered(5)) != 0 {
		t.Fatal("delivered entry still reported")
	}
	if len(s.Undelivered(9)) != 1 {
		t.Fatal("deadline-9 update should be ready at round 9")
	}
}

func TestDropBefore(t *testing.T) {
	s := NewStore()
	s.Add(mkUpdate(1, 50), 1, 1, true)
	s.Add(mkUpdate(2, 50), 2, 1, true)
	s.Add(mkUpdate(3, 50), 3, 1, true)
	if got := s.DropBefore(3); got != 2 {
		t.Fatalf("dropped %d, want 2", got)
	}
	if s.Len() != 1 || s.Has(model.UpdateID{Stream: 1, Seq: 1}) {
		t.Fatal("DropBefore left stale entries")
	}
	if got := s.DropBefore(3); got != 0 {
		t.Fatal("second DropBefore should drop nothing")
	}
}

func TestBufferMap(t *testing.T) {
	h1, h2 := []byte{1, 2, 3}, []byte{4, 5, 6}
	bm := NewBufferMap([][]byte{h1, h2})
	if bm.Len() != 2 {
		t.Fatalf("Len = %d", bm.Len())
	}
	if !bm.Contains(h1) || !bm.Contains(h2) {
		t.Fatal("Contains false negative")
	}
	if bm.Contains([]byte{9}) {
		t.Fatal("Contains false positive")
	}
	var empty BufferMap
	if empty.Contains(h1) {
		t.Fatal("zero BufferMap should contain nothing")
	}
}

func TestForwardSplit(t *testing.T) {
	r := model.Round(10)
	expired := &Entry{Update: mkUpdate(1, 9)}      // already dead
	expiring := &Entry{Update: mkUpdate(2, 10)}    // dies next round
	forwardable := &Entry{Update: mkUpdate(3, 15)} // lives on

	exp, fwd := ForwardSplit([]*Entry{expired, expiring, forwardable}, r)
	if len(exp) != 1 || exp[0].Update.ID.Seq != 2 {
		t.Fatalf("expiring = %v", exp)
	}
	if len(fwd) != 1 || fwd[0].Update.ID.Seq != 3 {
		t.Fatalf("forwardable = %v", fwd)
	}
}

func TestGeneratorEmit(t *testing.T) {
	signer := &fakeSigner{}
	g, err := NewGenerator(1, signer, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	us, err := g.Emit(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 3 || signer.calls != 3 {
		t.Fatalf("emitted %d, signed %d", len(us), signer.calls)
	}
	for i, u := range us {
		if u.ID.Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, u.ID.Seq)
		}
		if u.Deadline != 15 {
			t.Fatalf("deadline = %v, want 15", u.Deadline)
		}
		if len(u.Payload) != 32 {
			t.Fatalf("payload = %d bytes", len(u.Payload))
		}
		if len(u.SrcSig) == 0 {
			t.Fatal("missing source signature")
		}
	}
	if g.NextSeq() != 3 {
		t.Fatalf("NextSeq = %d", g.NextSeq())
	}
	// Sequence numbers continue across Emit calls.
	more, _ := g.Emit(6, 1)
	if more[0].ID.Seq != 3 {
		t.Fatal("sequence did not continue")
	}
}

func TestGeneratorPayloadDeterministic(t *testing.T) {
	g1, _ := NewGenerator(1, &fakeSigner{}, 64, 10)
	g2, _ := NewGenerator(1, &fakeSigner{}, 64, 10)
	u1, _ := g1.Emit(1, 1)
	u2, _ := g2.Emit(1, 1)
	if !bytes.Equal(u1[0].Payload, u2[0].Payload) {
		t.Fatal("payloads not deterministic")
	}
	// Different streams produce different payloads.
	g3, _ := NewGenerator(2, &fakeSigner{}, 64, 10)
	u3, _ := g3.Emit(1, 1)
	if bytes.Equal(u1[0].Payload, u3[0].Payload) {
		t.Fatal("different streams share payloads")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1, nil, 10, 10); err == nil {
		t.Fatal("nil signer accepted")
	}
	if _, err := NewGenerator(1, &fakeSigner{}, 0, 10); err == nil {
		t.Fatal("zero payload accepted")
	}
	if _, err := NewGenerator(1, &fakeSigner{}, 10, 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
}
