package update

import (
	"bytes"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Interner is the session-wide flyweight table for update content. In a
// simulated session every node stores its own copy of every update it
// receives, so the dominant memory term is N × (payload + source signature)
// per live update — at the paper's 938-byte payloads and 256-byte RSA-sized
// signatures that is what keeps 10⁵ nodes from fitting one box. All those
// copies are byte-identical by construction (the source signs the canonical
// bytes and every receiver verifies the signature before storing), so the
// content can be shared: the first node to store an update publishes its
// payload, signature and (lazily) its homomorphic-hash embedding; every
// other node's store entry aliases the published slices.
//
// Safety under Byzantine senders: Canonical only returns the shared content
// when payload, signature AND deadline are byte-equal to the published
// ones. A sender distributing divergent content under one UpdateID (which
// would require forging the source signature, but the guard holds
// regardless) leaves each receiver with its private copy — interning is
// a pure memory optimisation, never a trust widening.
//
// Determinism: all successfully interned values for an id are byte-equal,
// and embeddings are pure functions of the canonical bytes, so which node
// wins the first-publish race under the parallel engine is unobservable —
// report JSON, digests and obs snapshots are byte-identical with the
// interner attached, detached (DisableFlyweight) and at any worker count
// (flyweight_gate_test.go holds the matrix).
type Interner struct {
	mu sync.RWMutex
	m  map[model.UpdateID]*interned
}

// interned is one published update's shared content.
type interned struct {
	deadline model.Round
	payload  []byte
	srcSig   []byte
	// embed caches the homomorphic-hash embedding (u^1 mod M) of the
	// canonical bytes, published on first computation. All racing writers
	// compute the same value, so CompareAndSwap keeps one of N equal
	// big.Ints instead of N.
	embed atomic.Pointer[big.Int]
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[model.UpdateID]*interned)}
}

// Canonical returns the flyweight representation of u: an Update whose
// Payload and SrcSig alias the session-wide shared copy. The first caller
// for an id publishes (cloning the slices, so transport decode buffers are
// never retained); later callers with byte-equal content get the shared
// slices, and callers with divergent content get u back unchanged.
func (in *Interner) Canonical(u Update) Update {
	if in == nil {
		return u
	}
	in.mu.RLock()
	e := in.m[u.ID]
	in.mu.RUnlock()
	if e == nil {
		in.mu.Lock()
		if e = in.m[u.ID]; e == nil {
			e = &interned{
				deadline: u.Deadline,
				payload:  bytes.Clone(u.Payload),
				srcSig:   bytes.Clone(u.SrcSig),
			}
			in.m[u.ID] = e
		}
		in.mu.Unlock()
	}
	if e.deadline != u.Deadline ||
		!bytes.Equal(e.payload, u.Payload) || !bytes.Equal(e.srcSig, u.SrcSig) {
		return u // divergent content: keep the private copy
	}
	u.Payload = e.payload
	u.SrcSig = e.srcSig
	return u
}

// SharedEmbed returns the session-shared embedding of u when u carries the
// interned content, computing and publishing it on first use; for private
// (non-interned or divergent) copies it just runs compute. compute must be
// a pure function of u's canonical bytes.
func (in *Interner) SharedEmbed(u Update, compute func() *big.Int) *big.Int {
	if in == nil {
		return compute()
	}
	in.mu.RLock()
	e := in.m[u.ID]
	in.mu.RUnlock()
	if e == nil || !sameSlice(e.payload, u.Payload) {
		return compute()
	}
	if v := e.embed.Load(); v != nil {
		return v
	}
	e.embed.CompareAndSwap(nil, compute())
	return e.embed.Load()
}

// sameSlice reports whether two byte slices are the same allocation (not
// merely equal) — the cheap identity check that proves u went through
// Canonical.
func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// DropExpired garbage-collects entries whose deadline is before the given
// round, returning how many were dropped. Sessions call it from a
// round-top hook with the store retention as slack, so shared content
// outlives every node's private retention window.
func (in *Interner) DropExpired(before model.Round) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	dropped := 0
	for id, e := range in.m {
		if e.deadline < before {
			delete(in.m, id)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of live interned updates.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}
