// Package update models the disseminated data chunks ("updates") of a
// gossip session and the per-node update store: reception multiplicities
// (§V-D "Multiple receptions"), buffermap windows (§V-D "Buffermap
// transmissions") and expiration (§V-D "Expiration of updates").
package update

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/model"
)

// Update is one data chunk. "Each content is generated and signed by its
// source. Updates are propagated along with their signature so that they
// can be verified by the nodes upon reception, which prevents data
// tampering" (§III).
type Update struct {
	ID       model.UpdateID
	Deadline model.Round // round after which the update must stop propagating
	Payload  []byte
	SrcSig   []byte // source signature over CanonicalBytes
}

// CanonicalBytes returns the deterministic encoding that the source signs
// and that the homomorphic hash embeds. Two updates with equal canonical
// bytes are the same update.
func (u *Update) CanonicalBytes() []byte {
	out := make([]byte, 0, 4+8+8+4+len(u.Payload))
	out = binary.BigEndian.AppendUint32(out, uint32(u.ID.Stream))
	out = binary.BigEndian.AppendUint64(out, u.ID.Seq)
	out = binary.BigEndian.AppendUint64(out, uint64(u.Deadline))
	out = binary.BigEndian.AppendUint32(out, uint32(len(u.Payload)))
	out = append(out, u.Payload...)
	return out
}

// Expired reports whether the update must no longer be forwarded at the
// given round.
func (u *Update) Expired(r model.Round) bool { return u.Deadline < r }

// ExpiresNextRound reports whether a node forwarding at round r must place
// the update in the "do not re-forward" list (§V-D): the receiver would
// only forward it at r+1, when it is already expired.
func (u *Update) ExpiresNextRound(r model.Round) bool { return u.Deadline < r+1 }

// Entry is one stored update with its reception bookkeeping.
type Entry struct {
	Update Update
	// Received is the round the update was first accepted.
	Received model.Round
	// Count is the total reception multiplicity: the sum of the
	// multiplicity integers joined to every Serve that carried the
	// update (§V-D). The obligation hash uses u^Count.
	Count uint64
	// Forwardable records whether the update arrived on the forwardable
	// list (it must be re-forwarded) or the expiring list.
	Forwardable bool
	// Delivered marks handoff to the application (media player).
	Delivered bool
	// Embed caches the protocol layer's homomorphic-hash embedding of the
	// update bytes (u^1 mod M): every buffermap hash, serve attestation
	// and acknowledgement lifts this value, and it never changes once the
	// update is stored. nil until first computed; treated as read-only.
	Embed *big.Int
}

// Store is a single node's update store. It is not safe for concurrent use;
// protocol nodes are single-threaded within a round.
//
// Entries are allocated from chunked slabs and recycled through a free
// list when DropBefore retires them: a steady-state node churns ~7 entries
// per round for dozens of rounds, and slab reuse keeps that churn from
// ever reaching the garbage collector (the flyweight memory plane; entry
// *content* is shared across nodes by Interner).
type Store struct {
	byID    map[model.UpdateID]*Entry
	byRound map[model.Round][]model.UpdateID // reception round index
	free    []*Entry                         // retired entries awaiting reuse
	chunk   []Entry                          // tail of the current slab
}

// storeChunkEntries sizes the entry slabs: one allocation covers several
// rounds of receptions at the paper's stream rate.
const storeChunkEntries = 32

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		byID:    make(map[model.UpdateID]*Entry),
		byRound: make(map[model.Round][]model.UpdateID),
	}
}

// alloc hands out a zeroed Entry from the free list or the current slab.
func (s *Store) alloc() *Entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free = s.free[:n-1]
		*e = Entry{}
		return e
	}
	if len(s.chunk) == 0 {
		s.chunk = make([]Entry, storeChunkEntries)
	}
	e := &s.chunk[0]
	s.chunk = s.chunk[1:]
	return e
}

// Len returns the number of stored updates.
func (s *Store) Len() int { return len(s.byID) }

// Has reports whether the update is stored.
func (s *Store) Has(id model.UpdateID) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the entry for id, or nil.
func (s *Store) Get(id model.UpdateID) *Entry { return s.byID[id] }

// Add records the reception of u at round r with multiplicity count.
// If the update is already stored only the multiplicity is accumulated
// (and Forwardable widened), matching the paper's accounting: the node
// still owes u^count to its monitors even for duplicates. It returns true
// when the update was new.
func (s *Store) Add(u Update, r model.Round, count uint64, forwardable bool) bool {
	if count == 0 {
		count = 1
	}
	if e, ok := s.byID[u.ID]; ok {
		e.Count += count
		if forwardable {
			e.Forwardable = true
		}
		return false
	}
	e := s.alloc()
	e.Update = u
	e.Received = r
	e.Count = count
	e.Forwardable = forwardable
	s.byID[u.ID] = e
	s.byRound[r] = append(s.byRound[r], u.ID)
	return true
}

// ReceivedIn returns the entries first received during round r, in
// canonical (UpdateID) order — the set S_X a node must forward at r+1.
func (s *Store) ReceivedIn(r model.Round) []*Entry {
	ids := s.byRound[r]
	out := make([]*Entry, 0, len(ids))
	for _, id := range ids {
		if e, ok := s.byID[id]; ok {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// OwnedInWindow returns entries received in rounds (r-window, r], in
// canonical order: the buffermap source set. The paper found hashing "the
// updates of the last 4 rounds" optimal (§V-D).
func (s *Store) OwnedInWindow(r model.Round, window int) []*Entry {
	var out []*Entry
	for back := 0; back < window; back++ {
		if back > int(r) {
			break
		}
		rr := r - model.Round(back)
		for _, id := range s.byRound[rr] {
			if e, ok := s.byID[id]; ok {
				out = append(out, e)
			}
		}
	}
	sortEntries(out)
	return out
}

// Undelivered returns stored entries not yet handed to the application
// whose deadline is at or before r (ready for playback), in ID order.
func (s *Store) Undelivered(r model.Round) []*Entry {
	var out []*Entry
	for _, e := range s.byID {
		if !e.Delivered && e.Update.Deadline <= r {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// DropBefore removes updates received strictly before round r, returning
// how many were dropped. Callers garbage-collect with a retention of a few
// playout windows.
func (s *Store) DropBefore(r model.Round) int {
	dropped := 0
	for rr, ids := range s.byRound {
		if rr >= r {
			continue
		}
		for _, id := range ids {
			if e, ok := s.byID[id]; ok {
				// Retired entries are recycled; by the retention horizon
				// (several playout windows) nothing outside the store still
				// references them. The shared slices they alias stay owned
				// by the interner.
				s.free = append(s.free, e)
				delete(s.byID, id)
				dropped++
			}
		}
		delete(s.byRound, rr)
	}
	return dropped
}

func sortEntries(es []*Entry) {
	sort.Slice(es, func(i, j int) bool {
		return es[i].Update.ID.Less(es[j].Update.ID)
	})
}

// ---------------------------------------------------------------------------
// Buffermap
// ---------------------------------------------------------------------------

// BufferMap is the privacy-preserving ownership hint of §V-D: the
// homomorphic hashes, under the responder's fresh prime, of the updates it
// owns in the window. The requester matches by hashing its own candidates
// under the same prime — neither side reveals identifiers in clear to the
// monitors.
type BufferMap struct {
	hashes map[string]struct{}
}

// NewBufferMap builds a BufferMap from encoded hash values.
func NewBufferMap(encodedHashes [][]byte) BufferMap {
	m := make(map[string]struct{}, len(encodedHashes))
	for _, h := range encodedHashes {
		m[string(h)] = struct{}{}
	}
	return BufferMap{hashes: m}
}

// Len returns the number of hashes in the map.
func (b BufferMap) Len() int { return len(b.hashes) }

// Contains reports whether the encoded hash is present.
func (b BufferMap) Contains(encodedHash []byte) bool {
	if b.hashes == nil {
		return false
	}
	_, ok := b.hashes[string(encodedHash)]
	return ok
}

// ---------------------------------------------------------------------------
// Forwarding split (§V-D, expiration)
// ---------------------------------------------------------------------------

// ForwardSplit partitions the entries a node must forward at round r into
// the expiring list (acknowledged but not re-forwarded by the receiver)
// and the forwardable list.
func ForwardSplit(entries []*Entry, r model.Round) (expiring, forwardable []*Entry) {
	for _, e := range entries {
		if e.Update.Expired(r) {
			continue // already past deadline: not even served
		}
		if e.Update.ExpiresNextRound(r) {
			expiring = append(expiring, e)
		} else {
			forwardable = append(forwardable, e)
		}
	}
	return expiring, forwardable
}

// ---------------------------------------------------------------------------
// Source-side generation
// ---------------------------------------------------------------------------

// Signer abstracts the source identity (avoids importing pki here).
type Signer interface {
	Sign(msg []byte) ([]byte, error)
}

// Generator mints the updates of one stream at the source.
type Generator struct {
	stream  model.StreamID
	signer  Signer
	payload int
	ttl     model.Round
	nextSeq uint64
}

// NewGenerator creates a source-side generator: payloadBytes per update
// (938 in the paper) and ttl rounds of life (the 10 s playout delay).
func NewGenerator(stream model.StreamID, signer Signer, payloadBytes int, ttl model.Round) (*Generator, error) {
	if signer == nil {
		return nil, errors.New("update: generator needs a signer")
	}
	if payloadBytes <= 0 {
		return nil, fmt.Errorf("update: invalid payload size %d", payloadBytes)
	}
	if ttl == 0 {
		return nil, errors.New("update: ttl must be at least one round")
	}
	return &Generator{
		stream:  stream,
		signer:  signer,
		payload: payloadBytes,
		ttl:     ttl,
	}, nil
}

// Emit mints n updates released at round r. Payloads are deterministic
// pseudo-content (seq-dependent), which keeps simulations reproducible
// while exercising the full signing/hashing path.
func (g *Generator) Emit(r model.Round, n int) ([]Update, error) {
	out := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		u := Update{
			ID:       model.UpdateID{Stream: g.stream, Seq: g.nextSeq},
			Deadline: r + g.ttl,
			Payload:  syntheticPayload(g.stream, g.nextSeq, g.payload),
		}
		sig, err := g.signer.Sign(u.CanonicalBytes())
		if err != nil {
			return nil, fmt.Errorf("update: signing update %v: %w", u.ID, err)
		}
		u.SrcSig = sig
		out = append(out, u)
		g.nextSeq++
	}
	return out, nil
}

// NextSeq returns the sequence number the next emitted update will carry.
func (g *Generator) NextSeq() uint64 { return g.nextSeq }

// syntheticPayload fills a buffer with a cheap deterministic byte pattern.
func syntheticPayload(stream model.StreamID, seq uint64, n int) []byte {
	buf := make([]byte, n)
	state := uint64(stream)<<32 ^ seq ^ 0x9E3779B97F4A7C15
	for i := range buf {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf[i] = byte(state)
	}
	return buf
}
