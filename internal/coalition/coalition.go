// Package coalition reproduces the paper's probabilistic privacy study
// (§VII-E, Fig 10): the proportion of pairwise exchanges a global and
// active attacker controlling a fraction of the membership can discover,
// for PAG (3 and 5 monitors), for the AcTinG baseline, and against the
// theoretical minimum (an exchange is trivially known when one of its two
// endpoints is corrupted).
//
// Attack model for PAG, from §IV-B/§VI-A/§VII-E: the details of an
// exchange A→B (under B's fresh prime p_A) leak when the coalition can
// reconstruct p_A. A corrupted monitor holds the remainder product
// ∏_{k≠j} p_k of some exchange j it was designated for (Fig 6, message 7);
// dividing out the primes of corrupted predecessors k ∉ {A, j} yields p_A.
// The coalition therefore needs, in the round of the exchange:
//
//	∃ j ≠ A among B's predecessors such that
//	    the monitor designated for exchange j is corrupted, and
//	    every predecessor k ∉ {A, j} is corrupted
//
// — which is the paper's "all its predecessors except at most two and at
// least one of the monitors of this node collude". PAG's primes are fresh
// every round, so the condition must hold in-round; AcTinG's secure logs
// persist, so an interaction leaks if *any* monitor across the session's
// audit epochs is corrupted — which is why AcTinG saturates to full
// discovery around 10% attackers while PAG stays near the minimum.
package coalition

import (
	"fmt"
	"math"
	"math/rand"
)

// Rule selects the PAG leak predicate.
type Rule int

// Leak predicates.
const (
	// RuleDesignated is the faithful model described in the package
	// comment (designated-monitor remainders, per-round primes).
	RuleDesignated Rule = iota + 1
	// RuleAnyMonitor is the coarser bound sometimes quoted from §VI-A:
	// any corrupted monitor plus all-but-two corrupted predecessors.
	RuleAnyMonitor
)

// Config parameterises the study.
type Config struct {
	// Fanout is the number of predecessors per node (f).
	Fanout int
	// Monitors is the number of monitors per node (f_m).
	Monitors int
	// Epochs is the number of monitor re-assignments an AcTinG session
	// spans (each audit epoch exposes the full retroactive log).
	Epochs int
	// Trials is the number of Monte-Carlo interaction samples per point.
	Trials int
	// Seed fixes the Monte-Carlo randomness.
	Seed int64
	// Rule selects the PAG leak predicate (RuleDesignated if zero).
	Rule Rule
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Fanout == 0 {
		out.Fanout = 3
	}
	if out.Monitors == 0 {
		out.Monitors = out.Fanout
	}
	if out.Epochs == 0 {
		out.Epochs = 10
	}
	if out.Trials == 0 {
		out.Trials = 20000
	}
	if out.Rule == 0 {
		out.Rule = RuleDesignated
	}
	return out
}

// Point is one x-position of Fig 10.
type Point struct {
	AttackerFraction float64
	PAG              float64 // proportion of interactions discovered
	AcTinG           float64
	Minimum          float64
}

// Sweep evaluates the discovery proportions at each attacker fraction.
func Sweep(cfg Config, fractions []float64) []Point {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([]Point, 0, len(fractions))
	for _, q := range fractions {
		out = append(out, Point{
			AttackerFraction: q,
			PAG:              MonteCarloPAG(c, q, rng),
			AcTinG:           MonteCarloAcTinG(c, q, rng),
			Minimum:          MinimumDiscovery(q),
		})
	}
	return out
}

// MinimumDiscovery is the plain-black curve of Fig 10: the probability that
// at least one endpoint of the exchange is corrupted.
func MinimumDiscovery(q float64) float64 {
	return 1 - (1-q)*(1-q)
}

// MonteCarloPAG estimates the PAG discovery proportion at attacker
// fraction q by sampling random exchanges. Membership positions are drawn
// independently (nodes are assigned predecessors, successors and monitors
// uniformly at random, §VII-E).
func MonteCarloPAG(cfg Config, q float64, rng *rand.Rand) float64 {
	c := cfg.withDefaults()
	hit := 0
	for t := 0; t < c.Trials; t++ {
		// Endpoints.
		if rng.Float64() < q || rng.Float64() < q {
			hit++
			continue
		}
		// B's other predecessors (A is honest here) and monitors.
		predCorrupt := make([]bool, c.Fanout) // index 0 is A: honest
		for i := 1; i < c.Fanout; i++ {
			predCorrupt[i] = rng.Float64() < q
		}
		monCorrupt := make([]bool, c.Monitors)
		for i := range monCorrupt {
			monCorrupt[i] = rng.Float64() < q
		}
		if pagLeak(c, predCorrupt, monCorrupt, rng) {
			hit++
		}
	}
	return float64(hit) / float64(c.Trials)
}

// pagLeak evaluates the leak predicate for one sampled exchange.
func pagLeak(c Config, predCorrupt, monCorrupt []bool, rng *rand.Rand) bool {
	switch c.Rule {
	case RuleAnyMonitor:
		anyMon := false
		for _, m := range monCorrupt {
			if m {
				anyMon = true
				break
			}
		}
		if !anyMon {
			return false
		}
		honest := 0
		for _, p := range predCorrupt {
			if !p {
				honest++
			}
		}
		// All predecessors except at most two (A plus one other).
		return honest <= 2
	default: // RuleDesignated
		// For each pivot exchange j ≠ A: the designated monitor of j
		// must be corrupted and every predecessor k ∉ {A, j} must be
		// corrupted (their primes divide the remainder out).
		for j := 1; j < len(predCorrupt); j++ {
			designated := rng.Intn(len(monCorrupt))
			if !monCorrupt[designated] {
				continue
			}
			ok := true
			for k := 1; k < len(predCorrupt); k++ {
				if k != j && !predCorrupt[k] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
}

// MonteCarloAcTinG estimates the AcTinG discovery proportion: the logs of
// both endpoints persist, so the interaction leaks if any monitor of
// either endpoint across the session's epochs is corrupted.
func MonteCarloAcTinG(cfg Config, q float64, rng *rand.Rand) float64 {
	c := cfg.withDefaults()
	hit := 0
	draws := 2 * c.Monitors * c.Epochs
	for t := 0; t < c.Trials; t++ {
		if rng.Float64() < q || rng.Float64() < q {
			hit++
			continue
		}
		for i := 0; i < draws; i++ {
			if rng.Float64() < q {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(c.Trials)
}

// ClosedFormPAG is the analytic counterpart of MonteCarloPAG under
// RuleDesignated (used to cross-check the Monte-Carlo implementation).
func ClosedFormPAG(cfg Config, q float64) float64 {
	c := cfg.withDefaults()
	min := MinimumDiscovery(q)
	f := c.Fanout
	// P(leak | honest endpoints): union over f-1 pivots of
	// (designated monitor corrupted) ∧ (f-2 specific preds corrupted).
	// Pivots share predecessor requirements; inclusion-exclusion over
	// pivot pairs: all pivots need ≥ f-2 of the f-1 others corrupted.
	// Exact via enumeration of other-pred corruption patterns:
	leak := 0.0
	others := f - 1
	for mask := 0; mask < 1<<others; mask++ {
		pPat := 1.0
		for i := 0; i < others; i++ {
			if mask&(1<<i) != 0 {
				pPat *= q
			} else {
				pPat *= 1 - q
			}
		}
		// Pivot j (0-based among others) works if all other others
		// are corrupted; monitor draws are independent per pivot.
		pNoPivot := 1.0
		for j := 0; j < others; j++ {
			ok := true
			for k := 0; k < others; k++ {
				if k != j && mask&(1<<k) == 0 {
					ok = false
					break
				}
			}
			if ok {
				pNoPivot *= 1 - q // designated monitor honest
			}
		}
		leak += pPat * (1 - pNoPivot)
	}
	return min + (1-min)*leak
}

// ClosedFormAcTinG is the analytic counterpart of MonteCarloAcTinG.
func ClosedFormAcTinG(cfg Config, q float64) float64 {
	c := cfg.withDefaults()
	min := MinimumDiscovery(q)
	draws := float64(2 * c.Monitors * c.Epochs)
	return min + (1-min)*(1-math.Pow(1-q, draws))
}

// FormatSweep renders Fig 10 rows.
func FormatSweep(points []Point) string {
	out := fmt.Sprintf("%-12s %-10s %-10s %-10s\n",
		"attackers(%)", "AcTinG(%)", "PAG(%)", "minimum(%)")
	for _, p := range points {
		out += fmt.Sprintf("%-12.0f %-10.1f %-10.1f %-10.1f\n",
			p.AttackerFraction*100, p.AcTinG*100, p.PAG*100, p.Minimum*100)
	}
	return out
}
