package coalition

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinimumDiscovery(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 1}, {0.5, 0.75}, {0.1, 0.19},
	}
	for _, c := range cases {
		if got := MinimumDiscovery(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("MinimumDiscovery(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMonteCarloMatchesClosedFormPAG(t *testing.T) {
	cfg := Config{Fanout: 3, Monitors: 3, Trials: 200000, Seed: 1}
	rng := rand.New(rand.NewSource(2))
	for _, q := range []float64{0.05, 0.2, 0.5, 0.8} {
		mc := MonteCarloPAG(cfg, q, rng)
		cf := ClosedFormPAG(cfg, q)
		if math.Abs(mc-cf) > 0.01 {
			t.Errorf("q=%v: MC %v vs closed form %v", q, mc, cf)
		}
	}
}

func TestMonteCarloMatchesClosedFormAcTinG(t *testing.T) {
	cfg := Config{Fanout: 3, Monitors: 3, Epochs: 10, Trials: 200000, Seed: 3}
	rng := rand.New(rand.NewSource(4))
	for _, q := range []float64{0.02, 0.1, 0.3} {
		mc := MonteCarloAcTinG(cfg, q, rng)
		cf := ClosedFormAcTinG(cfg, q)
		if math.Abs(mc-cf) > 0.01 {
			t.Errorf("q=%v: MC %v vs closed form %v", q, mc, cf)
		}
	}
}

// TestFig10Shape verifies the paper's qualitative claims:
//   - AcTinG discovers (nearly) all interactions around 10% attackers;
//   - PAG stays close to the theoretical minimum;
//   - five monitors are closer to the minimum than three ("increasing the
//     number of monitors ... makes the privacy guarantees of PAG close to
//     ideal").
func TestFig10Shape(t *testing.T) {
	fracs := []float64{0.1, 0.3}
	pag3 := Sweep(Config{Fanout: 3, Monitors: 3, Trials: 100000, Seed: 5}, fracs)
	pag5 := Sweep(Config{Fanout: 5, Monitors: 5, Trials: 100000, Seed: 6}, fracs)

	// AcTinG ≈ 100% at 10% attackers.
	if pag3[0].AcTinG < 0.97 {
		t.Errorf("AcTinG at 10%% = %v, want ≈ 1", pag3[0].AcTinG)
	}
	// PAG-3 near the minimum at 10%.
	if pag3[0].PAG > pag3[0].Minimum+0.05 {
		t.Errorf("PAG-3 at 10%% = %v, minimum %v", pag3[0].PAG, pag3[0].Minimum)
	}
	// PAG-5 at 30% attackers leaks no more than PAG-3.
	if pag5[1].PAG > pag3[1].PAG+0.01 {
		t.Errorf("PAG-5 (%v) leaks more than PAG-3 (%v) at 30%%",
			pag5[1].PAG, pag3[1].PAG)
	}
	// Everything is bounded below by the minimum.
	for _, p := range pag3 {
		if p.PAG < p.Minimum-0.01 || p.AcTinG < p.Minimum-0.01 {
			t.Errorf("curve fell below the theoretical minimum: %+v", p)
		}
	}
}

func TestMonotoneInAttackerFraction(t *testing.T) {
	cfg := Config{Fanout: 3, Monitors: 3, Trials: 60000, Seed: 7}
	fracs := []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1}
	pts := Sweep(cfg, fracs)
	for i := 1; i < len(pts); i++ {
		if pts[i].PAG+0.02 < pts[i-1].PAG {
			t.Errorf("PAG not monotone at %v", pts[i].AttackerFraction)
		}
		if pts[i].AcTinG+0.02 < pts[i-1].AcTinG {
			t.Errorf("AcTinG not monotone at %v", pts[i].AttackerFraction)
		}
	}
	// Extremes.
	if pts[0].PAG != 0 || pts[0].AcTinG != 0 {
		t.Error("no attackers should discover nothing")
	}
	if pts[len(pts)-1].PAG < 0.999 {
		t.Error("full corruption should discover everything")
	}
}

func TestRuleAnyMonitorIsUpperBound(t *testing.T) {
	rngA := rand.New(rand.NewSource(8))
	rngB := rand.New(rand.NewSource(8))
	des := Config{Fanout: 3, Monitors: 3, Trials: 100000, Seed: 8, Rule: RuleDesignated}
	any := Config{Fanout: 3, Monitors: 3, Trials: 100000, Seed: 8, Rule: RuleAnyMonitor}
	for _, q := range []float64{0.1, 0.3, 0.5} {
		d := MonteCarloPAG(des, q, rngA)
		a := MonteCarloPAG(any, q, rngB)
		if d > a+0.01 {
			t.Errorf("q=%v: designated rule (%v) above any-monitor bound (%v)", q, d, a)
		}
	}
}

func TestFormatSweep(t *testing.T) {
	pts := []Point{{AttackerFraction: 0.1, PAG: 0.2, AcTinG: 0.9, Minimum: 0.19}}
	s := FormatSweep(pts)
	if s == "" || len(s) < 20 {
		t.Fatal("format too short")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}
	c := cfg.withDefaults()
	if c.Fanout != 3 || c.Monitors != 3 || c.Epochs != 10 || c.Trials == 0 || c.Rule != RuleDesignated {
		t.Fatalf("defaults: %+v", c)
	}
}
