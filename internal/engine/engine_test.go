package engine

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/transport"
)

// chatter is a toy protocol node: every round it sends a burst to its ring
// neighbours, and every reception below the reply depth triggers a reply —
// exercising multi-wave delivery. It records its full reception log so
// runs can be compared message-for-message.
type chatter struct {
	id    model.NodeID
	n     int
	ep    transport.Endpoint
	log   []string
	burst int
}

func (c *chatter) ID() model.NodeID { return c.id }

func (c *chatter) BeginRound(r model.Round) {
	for b := 0; b < c.burst; b++ {
		to := model.NodeID((int(c.id)+b)%c.n + 1)
		if to == c.id {
			to = model.NodeID(int(to)%c.n + 1)
		}
		payload := []byte(fmt.Sprintf("r%d b%d from %d", r, b, c.id))
		_ = c.ep.Send(to, 0, payload)
	}
}

func (c *chatter) MidRound(r model.Round)   {}
func (c *chatter) EndRound(r model.Round)   {}
func (c *chatter) CloseRound(r model.Round) {}

func (c *chatter) handle(m transport.Message) {
	c.log = append(c.log, fmt.Sprintf("k%d %s", m.Kind, m.Payload))
	if m.Kind < 2 {
		_ = c.ep.Send(m.From, m.Kind+1, m.Payload)
	}
}

// buildRun wires n chatter nodes over a faulty MemNet and returns the
// network plus nodes; deterministic given the seed.
func buildRun(n int, seed uint64) (*transport.MemNet, []*chatter) {
	net := transport.NewMemNet()
	net.SetFaultSeed(seed)
	net.SetLossRate(0.1)
	nodes := make([]*chatter, n)
	for i := 1; i <= n; i++ {
		c := &chatter{id: model.NodeID(i), n: n, burst: 3}
		ep, err := net.Register(c.id, c.handle)
		if err != nil {
			panic(err)
		}
		c.ep = ep
		nodes[i-1] = c
	}
	// An upload cap on node 2 exercises merge-point cap accounting.
	net.SetUploadCap(2, 3*uint64(transport.HeaderBytes+20))
	return net, nodes
}

type runResult struct {
	logs    map[model.NodeID][]string
	traffic map[model.NodeID]transport.Traffic
	dropped uint64
}

func capture(net *transport.MemNet, nodes []*chatter) runResult {
	res := runResult{
		logs:    make(map[model.NodeID][]string),
		traffic: make(map[model.NodeID]transport.Traffic),
	}
	for _, c := range nodes {
		res.logs[c.id] = append([]string(nil), c.log...)
		res.traffic[c.id] = net.TrafficOf(c.id)
	}
	res.dropped = net.Dropped()
	return res
}

func runSerial(n, rounds int, seed uint64) runResult {
	net, nodes := buildRun(n, seed)
	eng := sim.NewEngine(net)
	for _, c := range nodes {
		eng.Add(c)
	}
	eng.Run(rounds)
	return capture(net, nodes)
}

func runParallel(n, rounds, workers int, seed uint64) runResult {
	net, nodes := buildRun(n, seed)
	eng := New(net, workers)
	for _, c := range nodes {
		eng.Add(c)
	}
	eng.Run(rounds)
	return capture(net, nodes)
}

func diff(t *testing.T, want, got runResult, label string) {
	t.Helper()
	if want.dropped != got.dropped {
		t.Errorf("%s: dropped %d, want %d", label, got.dropped, want.dropped)
	}
	for id, wl := range want.logs {
		gl := got.logs[id]
		if len(wl) != len(gl) {
			t.Errorf("%s: node %v received %d messages, want %d", label, id, len(gl), len(wl))
			continue
		}
		for i := range wl {
			if wl[i] != gl[i] {
				t.Errorf("%s: node %v message %d = %q, want %q", label, id, i, gl[i], wl[i])
				break
			}
		}
	}
	for id, wt := range want.traffic {
		if gt := got.traffic[id]; gt != wt {
			t.Errorf("%s: node %v traffic %+v, want %+v", label, id, gt, wt)
		}
	}
}

// TestParallelMatchesSerial is the determinism invariant at engine level:
// per-node reception logs, traffic counters and drop counts are identical
// to the serial engine's at every worker count, loss and caps included.
func TestParallelMatchesSerial(t *testing.T) {
	const n, rounds, seed = 23, 6, 99
	want := runSerial(n, rounds, seed)
	for _, workers := range []int{1, 2, 4, 16, 64} {
		got := runParallel(n, rounds, workers, seed)
		diff(t, want, got, fmt.Sprintf("workers=%d", workers))
	}
}

// TestParallelRepeatable: two parallel runs with the same seed and worker
// count are identical (no scheduling leakage).
func TestParallelRepeatable(t *testing.T) {
	a := runParallel(17, 5, 4, 7)
	b := runParallel(17, 5, 4, 7)
	diff(t, a, b, "repeat")
}

// TestStepperSemantics: Add/Remove/Has/ScheduleAt behave like the serial
// engine's.
func TestStepperSemantics(t *testing.T) {
	net := transport.NewMemNet()
	eng := New(net, 3)
	var s sim.Stepper = eng // compile-time and runtime interface check
	c := &chatter{id: 5, n: 1, burst: 0}
	ep, err := net.Register(5, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	c.ep = ep
	s.Add(c)
	if !s.Has(5) || s.Nodes() != 1 {
		t.Fatal("Add/Has broken")
	}
	fired := model.Round(0)
	s.ScheduleAt(2, func(r model.Round) { fired = r })
	s.RemoveAt(3, 5)
	s.Run(3)
	if fired != 2 {
		t.Fatalf("event fired at %v, want 2", fired)
	}
	if s.Has(5) {
		t.Fatal("RemoveAt did not detach the node")
	}
	if s.Round() != 3 {
		t.Fatalf("Round = %v", s.Round())
	}
	if s.Remove(5) {
		t.Fatal("Remove of a detached node reported true")
	}
}

// TestWorkerCountDefaults: New clamps non-positive worker counts to
// GOMAXPROCS.
func TestWorkerCountDefaults(t *testing.T) {
	if w := New(transport.NewMemNet(), 0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d", w)
	}
	if w := New(transport.NewMemNet(), -3).Workers(); w < 1 {
		t.Fatalf("Workers() = %d", w)
	}
	if w := New(transport.NewMemNet(), 7).Workers(); w != 7 {
		t.Fatalf("Workers() = %d, want 7", w)
	}
}
