// Package engine is the sharded parallel round engine: it drives the same
// four-phase rounds as the serial engine (internal/sim) but fans the node
// steps of each phase out across a worker pool, merging outbound traffic
// at the phase barriers.
//
// # Determinism invariant
//
// A run is byte-identical to the serial engine's at any worker count. The
// invariant is structural, not best-effort, and rests on three properties:
//
//  1. Node steps within a phase are independent. Nodes interact only
//     through messages, and messages are delivered exclusively at phase
//     barriers; shared infrastructure reached during a step (membership
//     directory, PKI suite, verdict sinks) is either immutable for the
//     round or commutative (counters, set-like collections).
//  2. Sends are buffered per sender and merged in canonical order —
//     ascending sender id, then per-sender send sequence — with the
//     network fault plane (seeded loss, partitions, upload caps) and all
//     traffic accounting applied at the merge point (transport.MemNet).
//     The canonical stream therefore depends only on what each node sent,
//     never on which worker ran it first.
//  3. Delivery preserves per-destination canonical order. A wave is
//     partitioned by destination shard; each worker replays its
//     destinations' subsequences in canonical order, and a node's state
//     (and its replies) depend only on its own subsequence.
//
// Anything that would break property 1 — a node reading another node's
// state mid-phase, a non-commutative shared sink — is a bug in the node,
// and the CI race job (`go test -race`) is the tripwire for it.
//
// # Sharding model
//
// Nodes are assigned to shards by id (id mod workers), so a node's phase
// steps and its incoming deliveries always run on the same shard and no
// node is ever touched by two goroutines concurrently. Shard assignment
// affects scheduling only; results are identical under any assignment.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Engine is the parallel round engine. It implements sim.Stepper, so a
// session can swap it in for the serial engine transparently; the node,
// hook and event bookkeeping (sim.Roster) and the bandwidth measurement
// (sim.Meter) are shared with the serial engine, so the two cannot drift
// apart on anything but the stepping itself.
//
// Mutating calls (Add, Remove, ScheduleAt, OnRoundStart, StartMeasuring)
// are only legal between rounds or from round-top events/hooks, which run
// single-threaded before any phase fans out.
type Engine struct {
	sim.Roster
	meter   sim.Meter
	net     *transport.MemNet
	workers int
	round   model.Round

	// Observability (nil without a registry). Rounds and deliveries are
	// deterministic counts under the same metric names as the serial
	// engine; round durations are ClassTimed (deterministic count,
	// wall-clock buckets); shard durations and merge-barrier stalls are
	// ClassSched — their very observation count depends on the worker
	// count, so they are excluded from deterministic snapshots entirely.
	roundsC     *obs.Counter
	deliveriesC *obs.Counter
	roundSpans  *obs.Histogram
	shardSpans  *obs.Histogram
	stallSpans  *obs.Histogram
	trace       *obs.Tracer
}

var _ sim.Stepper = (*Engine)(nil)

// New creates a parallel engine over a MemNet with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func New(net *transport.MemNet, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{net: net, workers: workers, meter: sim.NewMeter(net)}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Instrument attaches the observability registry and tracer (either may
// be nil): counters plus round_begin/round_end trace events bracketing
// every round, identical in form to the serial engine's — the round
// markers are emitted single-threaded (round top / after the last
// barrier), so they are part of the deterministic event class.
func (e *Engine) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.roundsC = reg.Counter("pag_engine_rounds_total")
	e.deliveriesC = reg.Counter("pag_engine_deliveries_total")
	e.roundSpans = reg.Histogram("pag_engine_round_seconds", obs.ClassTimed, nil)
	e.shardSpans = reg.Histogram("pag_engine_shard_seconds", obs.ClassSched, nil)
	e.stallSpans = reg.Histogram("pag_engine_barrier_stall_seconds", obs.ClassSched, nil)
	e.trace = tr
}

// Round returns the last completed round (0 before the first).
func (e *Engine) Round() model.Round { return e.round }

// shardIndex maps a node id to its shard. Phase steps and deliveries both
// use it, so a node is always driven by one goroutine at a time.
func (e *Engine) shardIndex(id model.NodeID) int {
	return int(uint64(id) % uint64(e.workers))
}

// shardNodes partitions the current node set by shard, preserving
// registration order within each shard.
func (e *Engine) shardNodes() [][]sim.Protocol {
	shards := make([][]sim.Protocol, e.workers)
	for _, n := range e.Members() {
		i := e.shardIndex(n.ID())
		shards[i] = append(shards[i], n)
	}
	return shards
}

// phase fans one phase step out across the shards and barriers on
// completion. When instrumented it records each shard's step duration
// and its stall — the time the shard then spent parked at the merge
// barrier waiting for the slowest sibling (load-imbalance visibility for
// the Fig 9 scaling work). Timing is recorded after the barrier, off the
// workers' critical path.
func (e *Engine) phase(shards [][]sim.Protocol, step func(sim.Protocol)) {
	timed := e.shardSpans != nil
	var phaseStart time.Time
	var durs []time.Duration
	if timed {
		phaseStart = time.Now()
		durs = make([]time.Duration, len(shards))
	}
	var wg sync.WaitGroup
	for i, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, ns []sim.Protocol) {
			defer wg.Done()
			var start time.Time
			if timed {
				start = time.Now()
			}
			for _, n := range ns {
				step(n)
			}
			if timed {
				durs[i] = time.Since(start)
			}
		}(i, shard)
	}
	wg.Wait()
	if timed {
		total := time.Since(phaseStart)
		for _, d := range durs {
			if d > 0 {
				e.shardSpans.Observe(d.Seconds())
				e.stallSpans.Observe((total - d).Seconds())
			}
		}
	}
}

// deliverAll drains delivery waves until quiescence, sharing the serial
// engine's transport.MaxDeliveryWaves cap (equal caps are part of the
// byte-identical contract). Each wave is taken from the network in
// canonical merged order, partitioned by destination shard, and replayed
// concurrently; messages sent during a wave form the next wave.
func (e *Engine) deliverAll() int {
	total := 0
	for wave := 0; wave < transport.MaxDeliveryWaves; wave++ {
		ds := e.net.TakeWave()
		if len(ds) == 0 {
			return total
		}
		total += len(ds)
		buckets := make([][]transport.Delivery, e.workers)
		for _, d := range ds {
			i := e.shardIndex(d.Msg.To)
			buckets[i] = append(buckets[i], d)
		}
		var wg sync.WaitGroup
		for _, b := range buckets {
			if len(b) == 0 {
				continue
			}
			wg.Add(1)
			go func(sub []transport.Delivery) {
				defer wg.Done()
				for _, d := range sub {
					d.Handler(d.Msg)
				}
			}(b)
		}
		wg.Wait()
	}
	return total
}

// RunRound advances one round through the four phases. Events and hooks
// run single-threaded at the round top; each phase then fans out across
// the shards and merges at its barrier.
func (e *Engine) RunRound() {
	span := e.roundSpans.SpanStart()
	r := e.round + 1
	e.net.BeginRound()
	e.OpenRound(r)
	if e.trace != nil {
		e.trace.Emit("round_begin", obs.F("round", r), obs.F("nodes", e.Nodes()))
	}
	shards := e.shardNodes()
	delivered := 0
	e.phase(shards, func(n sim.Protocol) { n.BeginRound(r) })
	delivered += e.deliverAll()
	e.phase(shards, func(n sim.Protocol) { n.MidRound(r) })
	delivered += e.deliverAll()
	e.phase(shards, func(n sim.Protocol) { n.EndRound(r) })
	delivered += e.deliverAll()
	e.phase(shards, func(n sim.Protocol) { n.CloseRound(r) })
	delivered += e.deliverAll()
	e.round = r
	e.meter.RoundDone()
	e.roundsC.Inc()
	e.deliveriesC.Add(uint64(delivered))
	if e.trace != nil {
		e.trace.Emit("round_end", obs.F("round", r), obs.F("delivered", delivered))
		// All workers are parked at the last barrier: drain the shard
		// buffers here so the round's events hit the journal before the
		// next round opens, in deterministic shard order.
		e.trace.Flush()
	}
	e.roundSpans.SpanEnd(span)
}

// Run advances n rounds.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.RunRound()
	}
}

// StartMeasuring opens the steady-state measurement window (identical
// semantics to the serial engine — the shared sim.Meter).
func (e *Engine) StartMeasuring() { e.meter.Start(e.Members()) }

// NodeBandwidthKbps returns one node's average bandwidth over the
// measured window in kbps.
func (e *Engine) NodeBandwidthKbps(id model.NodeID) float64 {
	return e.meter.NodeBandwidthKbps(id)
}

// BandwidthSample returns the per-node bandwidth distribution over the
// measured window, excluding the listed nodes.
func (e *Engine) BandwidthSample(exclude ...model.NodeID) stats.Sample {
	return e.meter.Sample(e.Members(), exclude...)
}

// String summarises engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("engine.Engine{workers: %d, nodes: %d, round: %v}",
		e.workers, e.Nodes(), e.round)
}
