package scenario

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// These tests lock the scenario wire format: ParseJSON(s.JSON()) must
// reproduce s exactly, field for field. With pag-node shipping scenarios
// between processes (every process compiles the same timeline from the
// same document), a lossy or drifting encoding would silently desynchronise
// a deployment.

// roundTrip asserts ParseJSON∘JSON is the identity on s.
func roundTrip(t *testing.T, s Scenario) {
	t.Helper()
	got, err := ParseJSON(s.JSON())
	if err != nil {
		t.Fatalf("%s: re-parsing own JSON: %v", s.Name, err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("%s: round trip not identity\nin:  %+v\nout: %+v", s.Name, s, got)
	}
}

func TestJSONRoundTripCannedScenarios(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name, 16, 60)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, s)
	}
}

// randomScenario builds a valid scenario from a seeded PRNG: every event
// type, both churn distributions, boundary rounds. Generated fields stay
// in their valid ranges so Validate (inside ParseJSON) passes.
func randomScenario(rng *model.SplitMix64, i int) Scenario {
	rounds := 2 + int(rng.Next()%40)
	s := Scenario{
		Name:         "fuzz",
		Description:  "seeded random timeline",
		Seed:         rng.Next(),
		Rounds:       rounds,
		WarmupRounds: int(rng.Next() % uint64(rounds)),
	}
	pick := func() model.Round { return model.Round(1 + rng.Next()%uint64(rounds)) }
	node := func() model.NodeID { return model.NodeID(2 + rng.Next()%30) }
	nEvents := int(rng.Next() % 8)
	for e := 0; e < nEvents; e++ {
		switch rng.Next() % 10 {
		case 0:
			s.Events = append(s.Events, Event{Round: pick(), Action: ActionJoin})
		case 1:
			s.Events = append(s.Events, Event{Round: pick(), Action: ActionLeave, Node: node()})
		case 2:
			s.Events = append(s.Events, Event{
				Round: pick(), Action: ActionCrash, Node: node(),
				LingerRounds: int(rng.Next() % 4),
			})
		case 3:
			s.Events = append(s.Events, Event{Round: pick(), Action: ActionSetLoss, Rate: rng.Float()})
		case 4:
			s.Events = append(s.Events, Event{
				Round: pick(), Action: ActionSetLinkLoss,
				Node: node(), Peer: node(), Rate: rng.Float(),
			})
		case 5:
			s.Events = append(s.Events, Event{
				Round: pick(), Action: ActionPartition,
				Groups: [][]model.NodeID{{node(), node()}, {node()}},
			})
		case 6:
			s.Events = append(s.Events, Event{Round: pick(), Action: ActionHeal})
		case 7:
			s.Events = append(s.Events, Event{
				Round: pick(), Action: ActionSetUploadCap,
				Node: node(), CapKbps: int(rng.Next() % 2000),
			})
		case 8:
			profiles := []BehaviorProfile{ProfileCorrect, ProfileFreeRider, ProfileColluder}
			s.Events = append(s.Events, Event{
				Round: pick(), Action: ActionSetBehavior,
				Node: node(), Behavior: profiles[rng.Next()%3],
			})
		case 9:
			// set_queue_cap: sometimes population-wide (zero node),
			// sometimes targeted; deadline_rounds optional.
			var id model.NodeID
			if rng.Next()%2 == 0 {
				id = node()
			}
			s.Events = append(s.Events, Event{
				Round: pick(), Action: ActionSetQueueCap, Node: id,
				CapKbps:        int(rng.Next() % 2000),
				DeadlineRounds: int(rng.Next() % 12),
			})
		}
	}
	if i%2 == 0 {
		from := model.Round(1 + rng.Next()%uint64(rounds))
		dist := DistUniform
		if rng.Next()%2 == 0 {
			dist = DistPoisson
		}
		s.Churn = &Churn{
			FromRound:         from,
			ToRound:           from + model.Round(rng.Next()%uint64(rounds-int(from)+1)),
			JoinsPerRound:     rng.Float() * 3,
			LeavesPerRound:    rng.Float() * 3,
			CrashFraction:     rng.Float(),
			CrashLingerRounds: int(rng.Next() % 5),
			Distribution:      dist,
		}
	}
	return s
}

func TestJSONRoundTripRandomizedScenarios(t *testing.T) {
	rng := &model.SplitMix64{State: 0xC0FFEE}
	for i := 0; i < 200; i++ {
		s := randomScenario(rng, i)
		if err := s.Validate(); err != nil {
			t.Fatalf("case %d: generator produced an invalid scenario: %v", i, err)
		}
		roundTrip(t, s)
	}
}

// TestJSONRoundTripIsByteStable: a second render of the parsed document is
// byte-identical to the first — the property report digests rely on.
func TestJSONRoundTripIsByteStable(t *testing.T) {
	rng := &model.SplitMix64{State: 42}
	for i := 0; i < 50; i++ {
		s := randomScenario(rng, i)
		first := s.JSON()
		back, err := ParseJSON(first)
		if err != nil {
			t.Fatal(err)
		}
		if string(back.JSON()) != string(first) {
			t.Fatalf("case %d: re-rendered JSON differs", i)
		}
	}
}
