// Package scenario is a declarative, deterministic scenario engine for
// simulated sessions: it drives a run through a scripted timeline of churn
// (joins, graceful leaves, crashes — either listed explicitly or generated
// from a rate/distribution spec), network conditions (uniform and per-link
// loss, partitions that open and heal, per-node upload caps) and adversary
// activation (flipping a node's behaviour to a deviation profile at a
// chosen round).
//
// PAG assumes a dynamic membership substrate (§III: "a membership
// protocol, e.g., Fireflies, provides nodes with successors and monitors
// per round") and was evaluated under live-streaming conditions; this
// package makes those conditions scriptable. Everything is seed-driven —
// no wall clock, no global randomness — so the same scenario under the
// same seed replays byte-identically.
//
// The package is pure data + scheduling: it never touches protocol state
// itself. A session exposes the Applier surface; Timeline.Apply fires the
// due events into it at the top of each round.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
)

// Action enumerates the scripted event types.
type Action string

// The scripted event vocabulary.
const (
	// ActionJoin adds a member (Node, or a session-assigned fresh id
	// when Node is zero).
	ActionJoin Action = "join"
	// ActionLeave removes a member gracefully: membership re-draws at
	// the same round, so no obligations point at the departed node.
	ActionLeave Action = "leave"
	// ActionCrash fail-stops a member: it goes silent immediately, but
	// the membership only removes it LingerRounds later — until then,
	// monitors see an unresponsive node (and may well convict it: a
	// crash is observationally a refusal to participate).
	ActionCrash Action = "crash"
	// ActionSetLoss sets the uniform message-loss probability.
	ActionSetLoss Action = "set_loss"
	// ActionSetLinkLoss sets one directed link's loss probability.
	ActionSetLinkLoss Action = "set_link_loss"
	// ActionPartition splits the network into Groups (nodes listed in no
	// group form one implicit extra group).
	ActionPartition Action = "partition"
	// ActionHeal removes the partition.
	ActionHeal Action = "heal"
	// ActionSetUploadCap caps a node's upload at CapKbps (0 removes).
	// Caps are the transport's queued link model: over-budget messages
	// defer to later rounds, paced by the cap, and expire past the queue
	// deadline.
	ActionSetUploadCap Action = "set_upload_cap"
	// ActionSetQueueCap is the link-model form of the upload cap: it caps
	// Node at CapKbps (zero Node caps every current non-source member —
	// the whole-population sweeps of the capacity-cliff scenario) and
	// optionally retunes the queue deadline via DeadlineRounds. Sessions
	// open a measurement epoch at each firing, so reports slice
	// continuity and queue pressure per capacity level.
	ActionSetQueueCap Action = "set_queue_cap"
	// ActionSetBehavior flips a node's deviation profile.
	ActionSetBehavior Action = "set_behavior"
)

// BehaviorProfile is a protocol-agnostic deviation profile; each protocol
// maps it onto its own Behavior knobs.
type BehaviorProfile string

// The profiles every protocol can express.
const (
	// ProfileCorrect restores full protocol compliance.
	ProfileCorrect BehaviorProfile = "correct"
	// ProfileFreeRider consumes the stream but shirks upload work
	// (PAG: skip serves; AcTinG: never propose; RAC: drop relays).
	ProfileFreeRider BehaviorProfile = "free-rider"
	// ProfileColluder keeps forwarding data but sabotages the
	// accountability infrastructure (PAG: silent monitor + no reports;
	// AcTinG: refuse audits; RAC: no cover traffic).
	ProfileColluder BehaviorProfile = "colluder"
	// ProfileRotationDodger free-rides only in the rounds where the
	// pre-handover accountability was blind (PAG: skip serves exactly on
	// monitor-rotation rounds; AcTinG/RAC have no rotation concept and
	// map it to their plain free-rider knobs).
	ProfileRotationDodger BehaviorProfile = "rotation-dodger"
)

// Event is one scripted occurrence. Unused fields stay zero; Validate
// checks the combination per action.
type Event struct {
	Round  model.Round `json:"round"`
	Action Action      `json:"action"`
	// Node targets join/leave/crash/set_upload_cap/set_behavior; zero
	// means "auto": a fresh id for joins, a seed-picked victim for
	// leaves and crashes.
	Node model.NodeID `json:"node,omitempty"`
	// Peer is the destination of a set_link_loss event.
	Peer model.NodeID `json:"peer,omitempty"`
	// Rate is the loss probability of set_loss / set_link_loss.
	Rate float64 `json:"rate,omitempty"`
	// Groups lists the partition's explicit groups.
	Groups [][]model.NodeID `json:"groups,omitempty"`
	// CapKbps is the upload cap of set_upload_cap / set_queue_cap.
	CapKbps int `json:"cap_kbps,omitempty"`
	// DeadlineRounds retunes the link queue's expiry deadline in a
	// set_queue_cap event: how many rounds a deferred message may wait
	// before it is dropped as expired (the §V-D playout window). 0 keeps
	// the session's current deadline; -1 disables expiry — the unbounded
	// store-and-forward ablation.
	DeadlineRounds int `json:"deadline_rounds,omitempty"`
	// Behavior is the profile of set_behavior.
	Behavior BehaviorProfile `json:"behavior,omitempty"`
	// LingerRounds delays a crash's membership removal (failure
	// detection latency); 0 removes the node the same round.
	LingerRounds int `json:"linger_rounds,omitempty"`
}

// Distribution selects how a churn rate is turned into per-round counts.
type Distribution string

// Supported churn distributions.
const (
	// DistUniform spreads the rate evenly (fractional credit carries
	// over between rounds).
	DistUniform Distribution = "uniform"
	// DistPoisson draws each round's count from a Poisson with the rate
	// as mean — bursty, like real arrival processes.
	DistPoisson Distribution = "poisson"
)

// Churn generates join/leave/crash events from rates instead of listing
// them one by one.
type Churn struct {
	// FromRound / ToRound bound the churn window (inclusive).
	FromRound model.Round `json:"from_round"`
	ToRound   model.Round `json:"to_round"`
	// JoinsPerRound / LeavesPerRound are mean event rates.
	JoinsPerRound  float64 `json:"joins_per_round"`
	LeavesPerRound float64 `json:"leaves_per_round"`
	// CrashFraction is the share of departures that crash (fail-stop
	// with detection latency) instead of leaving gracefully.
	CrashFraction float64 `json:"crash_fraction,omitempty"`
	// CrashLingerRounds is the detection latency of generated crashes.
	CrashLingerRounds int `json:"crash_linger_rounds,omitempty"`
	// Distribution defaults to uniform.
	Distribution Distribution `json:"distribution,omitempty"`
}

// Scenario is a complete declarative script.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives churn expansion, auto-victim picks and the network
	// fault plane. Zero defaults to 1.
	Seed uint64 `json:"seed,omitempty"`
	// Rounds is the total session length.
	Rounds int `json:"rounds"`
	// WarmupRounds precede the measured window.
	WarmupRounds int `json:"warmup_rounds,omitempty"`
	// Events is the explicit timeline (any order; fired in round order,
	// ties in listed order).
	Events []Event `json:"events,omitempty"`
	// Churn optionally generates additional join/leave/crash events.
	Churn *Churn `json:"churn,omitempty"`
	// Eviction optionally arms the accountability plane's punishment
	// loop for the run: nodes reaching the conviction threshold are
	// evicted from the membership and their ids quarantined. Nil keeps
	// the reporting-only behaviour.
	Eviction *Eviction `json:"eviction,omitempty"`
}

// Eviction scripts the punishment loop: how much deduplicated evidence
// convicts, and how long an evicted id stays barred from re-joining. It is
// part of the scenario (not a session flag) so a script fully determines
// the run, and the same script replays identically over any transport.
type Eviction struct {
	// ConvictionThreshold is the deduplicated verdict count that
	// convicts (>= 1).
	ConvictionThreshold int `json:"conviction_threshold"`
	// QuarantineRounds bars the evicted id from re-joining for this many
	// rounds after the eviction.
	QuarantineRounds int `json:"quarantine_rounds"`
}

// ParseJSON decodes and validates a scenario document.
func ParseJSON(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// JSON encodes the scenario (stable field order — struct order).
func (s Scenario) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Scenario contains only marshallable fields.
		panic(fmt.Sprintf("scenario: marshalling %q: %v", s.Name, err))
	}
	return out
}

// Validate checks the script's internal consistency.
func (s Scenario) Validate() error {
	if s.Rounds <= 0 {
		return fmt.Errorf("scenario %q: rounds must be positive, got %d", s.Name, s.Rounds)
	}
	if s.WarmupRounds < 0 || s.WarmupRounds >= s.Rounds {
		return fmt.Errorf("scenario %q: warmup %d outside [0, %d)", s.Name, s.WarmupRounds, s.Rounds)
	}
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("scenario %q: event %d: %w", s.Name, i, err)
		}
		if e.Round < 1 || e.Round > model.Round(s.Rounds) {
			return fmt.Errorf("scenario %q: event %d: round %v outside [1, %d]",
				s.Name, i, e.Round, s.Rounds)
		}
	}
	if ev := s.Eviction; ev != nil {
		if ev.ConvictionThreshold < 1 {
			return fmt.Errorf("scenario %q: eviction threshold %d must be >= 1",
				s.Name, ev.ConvictionThreshold)
		}
		if ev.QuarantineRounds < 0 {
			return fmt.Errorf("scenario %q: negative quarantine", s.Name)
		}
	}
	if c := s.Churn; c != nil {
		if c.FromRound < 1 || c.ToRound < c.FromRound || c.ToRound > model.Round(s.Rounds) {
			return fmt.Errorf("scenario %q: churn window [%v, %v] outside [1, %d]",
				s.Name, c.FromRound, c.ToRound, s.Rounds)
		}
		if c.JoinsPerRound < 0 || c.LeavesPerRound < 0 {
			return fmt.Errorf("scenario %q: negative churn rate", s.Name)
		}
		if c.CrashFraction < 0 || c.CrashFraction > 1 {
			return fmt.Errorf("scenario %q: crash fraction %v outside [0, 1]", s.Name, c.CrashFraction)
		}
		switch c.Distribution {
		case "", DistUniform, DistPoisson:
		default:
			return fmt.Errorf("scenario %q: unknown churn distribution %q", s.Name, c.Distribution)
		}
	}
	return nil
}

func (e Event) validate() error {
	switch e.Action {
	case ActionJoin, ActionLeave, ActionCrash, ActionHeal:
	case ActionSetLoss:
		if e.Rate < 0 || e.Rate > 1 {
			return fmt.Errorf("loss rate %v outside [0, 1]", e.Rate)
		}
	case ActionSetLinkLoss:
		if e.Rate < 0 || e.Rate > 1 {
			return fmt.Errorf("loss rate %v outside [0, 1]", e.Rate)
		}
		if e.Node == model.NoNode || e.Peer == model.NoNode {
			return fmt.Errorf("set_link_loss needs node and peer")
		}
	case ActionPartition:
		if len(e.Groups) == 0 {
			return fmt.Errorf("partition needs at least one group")
		}
	case ActionSetUploadCap:
		if e.Node == model.NoNode {
			return fmt.Errorf("set_upload_cap needs a node")
		}
		if e.CapKbps < 0 {
			return fmt.Errorf("negative upload cap")
		}
	case ActionSetQueueCap:
		// A zero Node is legal here: it caps every current non-source
		// member (the population-wide capacity sweep).
		if e.CapKbps < 0 {
			return fmt.Errorf("negative upload cap")
		}
		if e.DeadlineRounds < -1 {
			return fmt.Errorf("queue deadline %d (want >= 0, or -1 to disable expiry)", e.DeadlineRounds)
		}
	case ActionSetBehavior:
		if e.Node == model.NoNode {
			return fmt.Errorf("set_behavior needs a node")
		}
		switch e.Behavior {
		case ProfileCorrect, ProfileFreeRider, ProfileColluder, ProfileRotationDodger:
		default:
			return fmt.Errorf("unknown behavior profile %q", e.Behavior)
		}
	default:
		return fmt.Errorf("unknown action %q", e.Action)
	}
	if e.LingerRounds < 0 {
		return fmt.Errorf("negative linger")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

// ChurnApplier is the membership half of the scenario surface.
type ChurnApplier interface {
	// Join adds a member; NoNode asks the session for a fresh identity.
	// It returns the id actually admitted (for the journal).
	Join(r model.Round, id model.NodeID) (model.NodeID, error)
	// Leave removes a member gracefully.
	Leave(r model.Round, id model.NodeID) error
	// Crash fail-stops a member; its membership entry lingers for the
	// given number of rounds before removal.
	Crash(r model.Round, id model.NodeID, lingerRounds int) error
	// ChurnTargets returns the members eligible for auto-picked leaves
	// and crashes (ascending; the session excludes sources).
	ChurnTargets() []model.NodeID
}

// FaultApplier is the network half of the scenario surface. A session
// forwards these onto its transport's fault plane — any
// transport.FaultyNetwork, in-memory or real sockets, presents the same
// knobs.
type FaultApplier interface {
	SetLossRate(rate float64)
	SetLinkLoss(from, to model.NodeID, rate float64)
	Partition(groups [][]model.NodeID)
	Heal()
	SetUploadCap(id model.NodeID, kbps int)
	// SetQueueCap caps one node's upload (the transport's queued link
	// model) and, when deadlineRounds is nonzero, retunes the link
	// queue's expiry deadline (negative disables expiry; 0 keeps the
	// current deadline). Implementations should open a measurement epoch
	// so per-capacity metrics can be sliced.
	SetQueueCap(id model.NodeID, kbps, deadlineRounds int)
}

// BehaviorApplier is the adversary half of the scenario surface.
type BehaviorApplier interface {
	// SetBehavior flips a node's deviation profile.
	SetBehavior(id model.NodeID, profile BehaviorProfile) error
}

// Applier is the full surface a timeline drives. All methods are called
// at the top of a round, before any node acts.
type Applier interface {
	ChurnApplier
	FaultApplier
	BehaviorApplier
}

// Applied is one journal entry: an event that actually fired, with its
// resolved target and outcome.
type Applied struct {
	Round  model.Round  `json:"round"`
	Action Action       `json:"action"`
	Node   model.NodeID `json:"node,omitempty"`
	Detail string       `json:"detail,omitempty"`
	Err    string       `json:"error,omitempty"`
}

// Timeline is a compiled scenario: explicit events bucketed by round plus
// the churn generator state. One Timeline drives one run; compile a fresh
// one per session.
type Timeline struct {
	scenario Scenario
	byRound  map[model.Round][]Event
	churnGen *churnGen
	rng      model.SplitMix64
	journal  []Applied
	trace    *obs.Tracer
}

// Compile validates the scenario and prepares a timeline for one run.
func Compile(s Scenario) (*Timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	t := &Timeline{
		scenario: s,
		byRound:  make(map[model.Round][]Event),
		rng:      model.SplitMix64{State: seed ^ 0xD1B54A32D192ED03},
	}
	for _, e := range s.Events {
		t.byRound[e.Round] = append(t.byRound[e.Round], e)
	}
	if s.Churn != nil {
		t.churnGen = newChurnGen(*s.Churn, seed)
	}
	return t, nil
}

// Scenario returns the compiled script.
func (t *Timeline) Scenario() Scenario { return t.scenario }

// Instrument attaches the round-event tracer (nil is a no-op): every
// fired event — scripted, churn-generated or auto-resolved — emits one
// scenario_event record carrying the *resolved* event (auto joins pinned
// to the admitted id, auto victims to the picked node), which is exactly
// what trace→scenario replay needs to reproduce the run without the
// generator state.
func (t *Timeline) Instrument(tr *obs.Tracer) { t.trace = tr }

// Journal returns the applied-event log (what actually happened, in firing
// order, including events that failed to apply).
func (t *Timeline) Journal() []Applied { return t.journal }

// Apply fires every event due at round r into a. Individual event failures
// (e.g. a leave that would shrink the membership below the fanout) are
// recorded in the journal and do not stop the run.
func (t *Timeline) Apply(r model.Round, a Applier) {
	for _, e := range t.byRound[r] {
		t.fire(r, e, a)
	}
	delete(t.byRound, r)
	if g := t.churnGen; g != nil && r >= g.spec.FromRound && r <= g.spec.ToRound {
		joins, leaves := g.countsFor()
		for i := 0; i < joins; i++ {
			t.fire(r, Event{Round: r, Action: ActionJoin}, a)
		}
		for i := 0; i < leaves; i++ {
			act := ActionLeave
			linger := 0
			if g.spec.CrashFraction > 0 && g.rng.Float() < g.spec.CrashFraction {
				act = ActionCrash
				linger = g.spec.CrashLingerRounds
			}
			t.fire(r, Event{Round: r, Action: act, LingerRounds: linger}, a)
		}
	}
}

func (t *Timeline) fire(r model.Round, e Event, a Applier) {
	entry := Applied{Round: r, Action: e.Action, Node: e.Node}
	var err error
	switch e.Action {
	case ActionJoin:
		var id model.NodeID
		id, err = a.Join(r, e.Node)
		if err == nil {
			entry.Node = id
		}
	case ActionLeave, ActionCrash:
		id := e.Node
		if id == model.NoNode {
			id = t.pickVictim(a)
			entry.Node = id
		}
		if id == model.NoNode {
			err = fmt.Errorf("no eligible churn target")
		} else if e.Action == ActionLeave {
			err = a.Leave(r, id)
		} else {
			err = a.Crash(r, id, e.LingerRounds)
		}
	case ActionSetLoss:
		a.SetLossRate(e.Rate)
		entry.Detail = fmt.Sprintf("rate=%g", e.Rate)
	case ActionSetLinkLoss:
		a.SetLinkLoss(e.Node, e.Peer, e.Rate)
		entry.Detail = fmt.Sprintf("to=%v rate=%g", e.Peer, e.Rate)
	case ActionPartition:
		a.Partition(e.Groups)
		entry.Detail = fmt.Sprintf("groups=%d", len(e.Groups))
	case ActionHeal:
		a.Heal()
	case ActionSetUploadCap:
		a.SetUploadCap(e.Node, e.CapKbps)
		entry.Detail = fmt.Sprintf("cap=%dkbps", e.CapKbps)
	case ActionSetQueueCap:
		if e.Node == model.NoNode {
			// Population-wide sweep: every current non-source member, in
			// ascending id order (ChurnTargets excludes the source and
			// the already-departed).
			targets := a.ChurnTargets()
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			for _, id := range targets {
				a.SetQueueCap(id, e.CapKbps, e.DeadlineRounds)
			}
			entry.Detail = fmt.Sprintf("cap=%dkbps deadline=%dr nodes=%d",
				e.CapKbps, e.DeadlineRounds, len(targets))
		} else {
			a.SetQueueCap(e.Node, e.CapKbps, e.DeadlineRounds)
			entry.Detail = fmt.Sprintf("cap=%dkbps deadline=%dr", e.CapKbps, e.DeadlineRounds)
		}
	case ActionSetBehavior:
		err = a.SetBehavior(e.Node, e.Behavior)
		entry.Detail = string(e.Behavior)
	}
	if err != nil {
		entry.Err = err.Error()
	}
	t.journal = append(t.journal, entry)
	if t.trace != nil {
		resolved := e
		resolved.Round = r
		resolved.Node = entry.Node
		t.trace.Emit("scenario_event", obs.F("ev", resolved), obs.F("err", entry.Err))
	}
}

// pickVictim selects a deterministic random churn target.
func (t *Timeline) pickVictim(a Applier) model.NodeID {
	targets := a.ChurnTargets()
	if len(targets) == 0 {
		return model.NoNode
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets[t.rng.Next()%uint64(len(targets))]
}

// ---------------------------------------------------------------------------
// Churn generation
// ---------------------------------------------------------------------------

type churnGen struct {
	spec Churn
	rng  model.SplitMix64
	// joinAcc / leaveAcc carry fractional uniform-rate credit.
	joinAcc  float64
	leaveAcc float64
}

func newChurnGen(spec Churn, seed uint64) *churnGen {
	if spec.Distribution == "" {
		spec.Distribution = DistUniform
	}
	return &churnGen{spec: spec, rng: model.SplitMix64{State: seed ^ 0xA0761D6478BD642F}}
}

// countsFor returns this round's (joins, leaves); called exactly once per
// in-window round, in round order, so the stream stays deterministic.
func (g *churnGen) countsFor() (joins, leaves int) {
	switch g.spec.Distribution {
	case DistPoisson:
		return g.poisson(g.spec.JoinsPerRound), g.poisson(g.spec.LeavesPerRound)
	default:
		joins, g.joinAcc = drain(g.joinAcc + g.spec.JoinsPerRound)
		leaves, g.leaveAcc = drain(g.leaveAcc + g.spec.LeavesPerRound)
		return joins, leaves
	}
}

func drain(acc float64) (int, float64) {
	n := int(acc)
	return n, acc - float64(n)
}

// poisson draws via Knuth's product method — fine for the small per-round
// rates churn schedules use.
func (g *churnGen) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for p > limit {
		k++
		p *= g.rng.Float()
	}
	return k - 1
}
