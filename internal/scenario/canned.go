package scenario

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// This file ships the canned scenarios the evaluation harness and the CLI
// use. Each constructor takes the knobs worth varying and fills in
// paper-plausible defaults; Names/ByName expose them to cmd/pag-scenario.

// FlashCrowd models a live event going viral: `joiners` fresh nodes all
// arrive at round `at`, then the grown population streams on. The
// interesting question is whether the epoch transition re-draws
// dissemination so the newcomers reach full continuity.
func FlashCrowd(joiners int, at model.Round, rounds int) Scenario {
	s := Scenario{
		Name: "flash-crowd",
		Description: fmt.Sprintf(
			"%d nodes join simultaneously at round %v (one epoch transition, population grows mid-stream)",
			joiners, at),
		Seed:         1,
		Rounds:       rounds,
		WarmupRounds: int(at) - 1,
	}
	for i := 0; i < joiners; i++ {
		s.Events = append(s.Events, Event{Round: at, Action: ActionJoin})
	}
	return s
}

// SteadyChurn models a session in steady turnover: `ratePerRound` joins
// and as many departures every round between warmup and the end, a
// `crashFrac` share of the departures crashing with a 2-round detection
// latency instead of leaving cleanly. With rate 0.2 over 20 measured
// rounds on a 20-node system, roughly 20% of the population turns over —
// the paper's "realistic live-streaming conditions" regime.
func SteadyChurn(ratePerRound, crashFrac float64, warmup, rounds int) Scenario {
	return Scenario{
		Name: "steady-churn",
		Description: fmt.Sprintf(
			"%.2g joins and departures per round (%.0f%% of them crashes), uniform distribution",
			ratePerRound, crashFrac*100),
		Seed:         1,
		Rounds:       rounds,
		WarmupRounds: warmup,
		Churn: &Churn{
			FromRound:         model.Round(warmup + 1),
			ToRound:           model.Round(rounds),
			JoinsPerRound:     ratePerRound,
			LeavesPerRound:    ratePerRound,
			CrashFraction:     crashFrac,
			CrashLingerRounds: 2,
			Distribution:      DistUniform,
		},
	}
}

// TransientPartition cuts `islanders` off from the rest of the network
// between rounds `from` and `to` (exclusive heal), then lets them catch
// up. Continuity inside the island collapses during the cut and must
// recover afterwards.
func TransientPartition(islanders []model.NodeID, from, to model.Round, rounds int) Scenario {
	island := append([]model.NodeID(nil), islanders...)
	sort.Slice(island, func(i, j int) bool { return island[i] < island[j] })
	return Scenario{
		Name: "transient-partition",
		Description: fmt.Sprintf(
			"nodes %v partitioned from the rest during rounds [%v, %v), then healed",
			island, from, to),
		Seed:         1,
		Rounds:       rounds,
		WarmupRounds: int(from) - 1,
		Events: []Event{
			{Round: from, Action: ActionPartition, Groups: [][]model.NodeID{island}},
			{Round: to, Action: ActionHeal},
		},
	}
}

// DelayedCoalition models adversaries that behave correctly through the
// warm-up — building an honest-looking history — and activate together at
// round `at`: the listed nodes flip to the given profile. Accountability
// must still convict them from their post-activation deviations alone.
func DelayedCoalition(adversaries []model.NodeID, profile BehaviorProfile, at model.Round, rounds int) Scenario {
	members := append([]model.NodeID(nil), adversaries...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	s := Scenario{
		Name: "delayed-coalition",
		Description: fmt.Sprintf(
			"nodes %v turn %s at round %v after an honest warm-up", members, profile, at),
		Seed:         1,
		Rounds:       rounds,
		WarmupRounds: int(at) - 1,
	}
	for _, id := range members {
		s.Events = append(s.Events, Event{
			Round: at, Action: ActionSetBehavior, Node: id, Behavior: profile,
		})
	}
	return s
}

// RejoinAttack scripts a punishment-loop stress test: the attacker turns
// free-rider at round `at`, accumulates verdicts until the eviction policy
// (threshold convictions, `quarantine` rounds of id ban) expels it, then
// tries to re-join its old id twice while quarantined (both rejected),
// slips two fresh-id Sybils in mid-quarantine (admitted — identity-based
// quarantine cannot stop fresh identities without admission control, which
// the report documents), re-joins legitimately after expiry, and promptly
// relapses — exercising the re-conviction path.
func RejoinAttack(attacker model.NodeID, at model.Round, threshold, quarantine, rounds int) Scenario {
	return Scenario{
		Name: "rejoin-attack",
		Description: fmt.Sprintf(
			"node %v free-rides from round %v, is evicted at %d convictions, probes its %d-round quarantine with rejoins and Sybil churn, then relapses after re-admission",
			attacker, at, threshold, quarantine),
		Seed:         1,
		Rounds:       rounds,
		WarmupRounds: 2,
		Eviction:     &Eviction{ConvictionThreshold: threshold, QuarantineRounds: quarantine},
		Events: []Event{
			{Round: at, Action: ActionSetBehavior, Node: attacker, Behavior: ProfileFreeRider},
			// Quarantine probes under the banned id.
			{Round: 12, Action: ActionJoin, Node: attacker},
			{Round: 16, Action: ActionJoin, Node: attacker},
			// Sybil churn: fresh ids sail through the id quarantine.
			{Round: 15, Action: ActionJoin},
			{Round: 15, Action: ActionJoin},
			// Legitimate re-admission after the quarantine expires...
			{Round: 26, Action: ActionJoin, Node: attacker},
			// ...followed by an immediate relapse.
			{Round: 27, Action: ActionSetBehavior, Node: attacker, Behavior: ProfileFreeRider},
		},
	}
}

// DefaultCliffRatios is CapacityCliff's default cap sweep, as multiples
// of the stream rate: generous headroom down to parity, bracketing the
// PAG/AcTinG overhead ratios the paper reports (≈3.5× and ≈1.5× at
// 300 kbps). Exported so experiment runners can size their round budgets
// to the sweep's length instead of hardcoding it.
var DefaultCliffRatios = []float64{8, 4, 2, 1.5, 1}

// CapacityCliff sweeps a population-wide queued upload cap downward
// toward the stream rate — the in-simulation form of Table II's
// sustainable-quality question. After `warmup` uncapped rounds, every
// non-source member's uplink is capped for `phaseRounds` rounds at each
// multiple in `ratios` (descending) of the `streamKbps` source rate.
// While the cap comfortably exceeds the protocol's per-node demand the
// link queue stays empty and continuity holds; as it crosses the
// protocol's overhead ratio the queue model starts deferring (bytes
// arrive late) and finally expiring (bytes arrive after their playout
// window) — the continuity cliff. Each cap change opens a measurement
// epoch, so the report slices continuity, deferral and expiry per
// capacity level.
func CapacityCliff(streamKbps, warmup, phaseRounds int, ratios []float64) Scenario {
	if len(ratios) == 0 {
		ratios = DefaultCliffRatios
	}
	s := Scenario{
		Name: "capacity-cliff",
		Description: fmt.Sprintf(
			"per-node queued upload caps sweep %gx down to %gx the %d kbps stream rate (%d rounds per level) — the Table II continuity cliff, measured",
			ratios[0], ratios[len(ratios)-1], streamKbps, phaseRounds),
		Seed:         1,
		Rounds:       warmup + phaseRounds*len(ratios),
		WarmupRounds: warmup,
	}
	for i, ratio := range ratios {
		s.Events = append(s.Events, Event{
			Round:   model.Round(warmup + i*phaseRounds + 1),
			Action:  ActionSetQueueCap, // Node omitted: every non-source member
			CapKbps: int(ratio * float64(streamKbps)),
		})
	}
	return s
}

// Names lists the canned scenarios ByName serves, in display order.
func Names() []string {
	return []string{"flash-crowd", "steady-churn", "transient-partition",
		"delayed-coalition", "rejoin-attack", "capacity-cliff"}
}

// ByName returns a canned scenario with defaults sized for a session of
// `nodes` members (node 1 is the source and node ids 2..nodes exist) and
// a source rate of streamKbps (<= 0 defaults to 60, cmd/pag-scenario's
// default) — the rate only matters to capacity-cliff, whose caps are
// absolute multiples of it.
func ByName(name string, nodes, streamKbps int) (Scenario, error) {
	if streamKbps <= 0 {
		streamKbps = 60
	}
	switch name {
	case "flash-crowd":
		return FlashCrowd(nodes/2, 11, 30), nil
	case "steady-churn":
		return SteadyChurn(0.2, 0.25, 10, 30), nil
	case "transient-partition":
		// Cut off the two highest client ids for eight rounds.
		island := []model.NodeID{model.NodeID(nodes - 1), model.NodeID(nodes)}
		return TransientPartition(island, 11, 19, 30), nil
	case "delayed-coalition":
		advs := []model.NodeID{model.NodeID(nodes - 1), model.NodeID(nodes)}
		return DelayedCoalition(advs, ProfileFreeRider, 11, 30), nil
	case "rejoin-attack":
		return RejoinAttack(model.NodeID(nodes), 3, 6, 14, 30), nil
	case "capacity-cliff":
		return CapacityCliff(streamKbps, 4, 6, nil), nil
	default:
		return Scenario{}, fmt.Errorf("scenario: unknown canned scenario %q (have %v)", name, Names())
	}
}
