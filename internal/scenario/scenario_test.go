package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
)

// fakeApplier journals calls as strings and tracks a member set.
type fakeApplier struct {
	calls   []string
	members []model.NodeID
	nextID  model.NodeID
	failAll bool
}

func newFakeApplier(n int) *fakeApplier {
	a := &fakeApplier{nextID: model.NodeID(n + 1)}
	for i := 2; i <= n; i++ { // node 1 is the protected source
		a.members = append(a.members, model.NodeID(i))
	}
	return a
}

func (a *fakeApplier) log(format string, args ...any) {
	a.calls = append(a.calls, fmt.Sprintf(format, args...))
}

func (a *fakeApplier) Join(r model.Round, id model.NodeID) (model.NodeID, error) {
	if a.failAll {
		return model.NoNode, fmt.Errorf("induced failure")
	}
	if id == model.NoNode {
		id = a.nextID
		a.nextID++
	}
	a.members = append(a.members, id)
	a.log("join %v@%v", id, r)
	return id, nil
}

func (a *fakeApplier) remove(id model.NodeID) {
	for i, m := range a.members {
		if m == id {
			a.members = append(a.members[:i], a.members[i+1:]...)
			return
		}
	}
}

func (a *fakeApplier) Leave(r model.Round, id model.NodeID) error {
	if a.failAll {
		return fmt.Errorf("induced failure")
	}
	a.remove(id)
	a.log("leave %v@%v", id, r)
	return nil
}

func (a *fakeApplier) Crash(r model.Round, id model.NodeID, linger int) error {
	a.remove(id)
	a.log("crash %v@%v linger=%d", id, r, linger)
	return nil
}

func (a *fakeApplier) SetLossRate(rate float64) { a.log("loss %g", rate) }
func (a *fakeApplier) SetLinkLoss(from, to model.NodeID, rate float64) {
	a.log("linkloss %v->%v %g", from, to, rate)
}
func (a *fakeApplier) Partition(groups [][]model.NodeID) { a.log("partition %v", groups) }
func (a *fakeApplier) Heal()                             { a.log("heal") }
func (a *fakeApplier) SetUploadCap(id model.NodeID, kbps int) {
	a.log("cap %v %dkbps", id, kbps)
}
func (a *fakeApplier) SetQueueCap(id model.NodeID, kbps, deadlineRounds int) {
	a.log("qcap %v %dkbps d=%d", id, kbps, deadlineRounds)
}
func (a *fakeApplier) SetBehavior(id model.NodeID, p BehaviorProfile) error {
	a.log("behavior %v %s", id, p)
	return nil
}
func (a *fakeApplier) ChurnTargets() []model.NodeID {
	return append([]model.NodeID(nil), a.members...)
}

func TestValidateRejectsBadScripts(t *testing.T) {
	cases := []Scenario{
		{Name: "no-rounds"},
		{Name: "warmup-too-long", Rounds: 5, WarmupRounds: 5},
		{Name: "event-out-of-range", Rounds: 5,
			Events: []Event{{Round: 9, Action: ActionHeal}}},
		{Name: "unknown-action", Rounds: 5,
			Events: []Event{{Round: 1, Action: "explode"}}},
		{Name: "bad-loss", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionSetLoss, Rate: 1.5}}},
		{Name: "linkloss-no-peer", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionSetLinkLoss, Node: 2, Rate: 0.5}}},
		{Name: "empty-partition", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionPartition}}},
		{Name: "behavior-no-node", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionSetBehavior, Behavior: ProfileFreeRider}}},
		{Name: "behavior-unknown-profile", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionSetBehavior, Node: 2, Behavior: "saint"}}},
		{Name: "queue-cap-negative", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionSetQueueCap, CapKbps: -5}}},
		{Name: "queue-cap-bad-deadline", Rounds: 5,
			Events: []Event{{Round: 1, Action: ActionSetQueueCap, DeadlineRounds: -2}}},
		{Name: "bad-churn-window", Rounds: 5,
			Churn: &Churn{FromRound: 4, ToRound: 2, JoinsPerRound: 1}},
		{Name: "bad-crash-fraction", Rounds: 5,
			Churn: &Churn{FromRound: 1, ToRound: 5, CrashFraction: 2}},
	}
	for _, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("scenario %q validated but should not", s.Name)
		}
	}
}

// TestQueueCapDisableExpiryValidates: deadline_rounds -1 is the scripted
// form of the store-and-forward ablation (expiry off) and must validate.
func TestQueueCapDisableExpiryValidates(t *testing.T) {
	s := Scenario{Name: "ablate", Rounds: 3, Events: []Event{
		{Round: 1, Action: ActionSetQueueCap, CapKbps: 50, DeadlineRounds: -1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("expiry-off ablation rejected: %v", err)
	}
	roundTrip(t, s)
}

func TestJSONRoundTrip(t *testing.T) {
	s := SteadyChurn(0.5, 0.25, 5, 20)
	s.Events = append(s.Events, Event{Round: 7, Action: ActionSetLoss, Rate: 0.1})
	got, err := ParseJSON(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", s, got)
	}
}

func TestTimelineFiresInRoundOrder(t *testing.T) {
	s := Scenario{
		Name: "ordered", Rounds: 10,
		Events: []Event{
			{Round: 3, Action: ActionSetLoss, Rate: 0.2},
			{Round: 1, Action: ActionPartition, Groups: [][]model.NodeID{{2, 3}}},
			{Round: 3, Action: ActionHeal},
		},
	}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	a := newFakeApplier(5)
	for r := model.Round(1); r <= 10; r++ {
		tl.Apply(r, a)
	}
	want := []string{"partition [[n2 n3]]", "loss 0.2", "heal"}
	if !reflect.DeepEqual(a.calls, want) {
		t.Fatalf("calls = %v, want %v", a.calls, want)
	}
	if len(tl.Journal()) != 3 {
		t.Fatalf("journal has %d entries", len(tl.Journal()))
	}
}

// TestQueueCapFansOutToAllMembers: a set_queue_cap with no node targets
// every current non-source member in ascending order — one journal entry,
// N applier calls.
func TestQueueCapFansOutToAllMembers(t *testing.T) {
	s := Scenario{Name: "qcap-all", Rounds: 4, Events: []Event{
		{Round: 2, Action: ActionSetQueueCap, CapKbps: 90, DeadlineRounds: 3},
		{Round: 3, Action: ActionSetQueueCap, Node: 4, CapKbps: 45},
	}}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	a := newFakeApplier(5) // members 2..5, source excluded
	for r := model.Round(1); r <= 4; r++ {
		tl.Apply(r, a)
	}
	want := []string{
		"qcap n2 90kbps d=3", "qcap n3 90kbps d=3",
		"qcap n4 90kbps d=3", "qcap n5 90kbps d=3",
		"qcap n4 45kbps d=0",
	}
	if !reflect.DeepEqual(a.calls, want) {
		t.Fatalf("calls = %v, want %v", a.calls, want)
	}
	j := tl.Journal()
	if len(j) != 2 {
		t.Fatalf("journal has %d entries, want 2 (the sweep is one event)", len(j))
	}
	if j[0].Detail != "cap=90kbps deadline=3r nodes=4" {
		t.Fatalf("sweep journal detail %q", j[0].Detail)
	}
}

func TestChurnExpansionDeterministic(t *testing.T) {
	run := func() []string {
		s := SteadyChurn(0.7, 0.5, 2, 30)
		tl, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		a := newFakeApplier(10)
		for r := model.Round(1); r <= 30; r++ {
			tl.Apply(r, a)
		}
		return a.calls
	}
	c1, c2 := run(), run()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", c1, c2)
	}
	joins, departs := 0, 0
	for _, c := range c1 {
		switch c[0] {
		case 'j':
			joins++
		case 'l', 'c':
			departs++
		}
	}
	// 0.7/round over 28 in-window rounds ≈ 19 each way (uniform credit).
	if joins < 15 || joins > 23 || departs < 15 || departs > 23 {
		t.Fatalf("churn volume off: %d joins, %d departures", joins, departs)
	}
}

func TestPoissonChurnHasSameMean(t *testing.T) {
	s := Scenario{
		Name: "poisson", Rounds: 400, Seed: 7,
		Churn: &Churn{FromRound: 1, ToRound: 400, JoinsPerRound: 0.5,
			Distribution: DistPoisson},
	}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	a := newFakeApplier(10)
	for r := model.Round(1); r <= 400; r++ {
		tl.Apply(r, a)
	}
	// Mean 0.5 over 400 rounds → ~200 joins; Poisson sd ≈ 14.
	if len(a.calls) < 140 || len(a.calls) > 260 {
		t.Fatalf("poisson volume far from mean: %d events", len(a.calls))
	}
}

func TestApplyFailureIsJournaledNotFatal(t *testing.T) {
	s := Scenario{Name: "fail", Rounds: 3, Events: []Event{
		{Round: 1, Action: ActionJoin},
		{Round: 2, Action: ActionHeal},
	}}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	a := newFakeApplier(5)
	a.failAll = true
	tl.Apply(1, a)
	tl.Apply(2, a)
	j := tl.Journal()
	if len(j) != 2 || j[0].Err == "" || j[1].Err != "" {
		t.Fatalf("journal = %+v", j)
	}
}

func TestCannedScenariosValidate(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name, 20, 60)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("canned scenario %q invalid: %v", name, err)
		}
		if _, err := Compile(s); err != nil {
			t.Errorf("canned scenario %q does not compile: %v", name, err)
		}
	}
	if _, err := ByName("nope", 20, 60); err == nil {
		t.Fatal("unknown canned name accepted")
	}
}
