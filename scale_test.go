package pag

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/model"
)

// TestCohortIDsAgainstReference: the incremental top-k selection in
// CohortIDs must match a brute-force sort over all candidate scores —
// same members, ascending order, source always present.
func TestCohortIDsAgainstReference(t *testing.T) {
	ref := func(globalN, k int, seed uint64) []model.NodeID {
		if k > globalN {
			k = globalN
		}
		type scored struct {
			id    model.NodeID
			score uint64
		}
		var all []scored
		for i := 2; i <= globalN; i++ {
			id := model.NodeID(i)
			all = append(all, scored{id, model.Hash64(seed ^ uint64(id)*0x9E3779B97F4A7C15 ^ 0xC04057)})
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].score < all[j].score })
		out := []model.NodeID{SourceID}
		for _, c := range all[:k-1] {
			out = append(out, c.id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	for _, tc := range []struct {
		globalN, k int
		seed       uint64
	}{
		{4, 1, 1}, {4, 2, 1}, {4, 4, 1}, {16, 5, 1}, {16, 16, 3},
		{256, 24, 1}, {256, 24, 99}, {1296, 48, 1}, {5000, 64, 7},
	} {
		got := CohortIDs(tc.globalN, tc.k, tc.seed)
		want := ref(tc.globalN, tc.k, tc.seed)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("CohortIDs(%d,%d,%d) = %v, want %v", tc.globalN, tc.k, tc.seed, got, want)
		}
		hasSource := false
		for _, id := range got {
			if id == SourceID {
				hasSource = true
			}
		}
		if !hasSource || len(got) != min(tc.k, tc.globalN) {
			t.Errorf("CohortIDs(%d,%d,%d): %d ids, source=%v", tc.globalN, tc.k, tc.seed, len(got), hasSource)
		}
	}
}

// scaleFingerprint reduces a scale run's cohort observables to one hash:
// the full per-cohort-node bandwidth distribution (exact float bits) plus
// the cohort continuity. This is the identity pag-bench also checks.
func scaleFingerprint(ss *ScaleSession) string {
	h := sha256.New()
	for _, bw := range ss.CohortBandwidthKbps() {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(bw))
		h.Write(b[:])
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(ss.MeanContinuity()))
	h.Write(b[:])
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runScale builds a sampled-cohort session, runs warmup + a measured
// window, and returns the cohort fingerprint and the lite plane's mean
// modelled bandwidth.
func runScale(t *testing.T, globalN, cohortN, workers int) (string, float64) {
	t.Helper()
	ss, err := NewScaleSession(ScaleConfig{
		GlobalNodes: globalN, CohortNodes: cohortN,
		StreamKbps: 2, UpdateBytes: 64, ModulusBits: 128, Seed: 7,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss.Run(4)
	ss.StartMeasuring()
	ss.Run(4)
	return scaleFingerprint(ss), ss.Lite.MeanBandwidthKbps()
}

// TestScaleCohortByteIdentity: the sampled-cohort mode's core promise —
// lite nodes exchange no messages and share no mutable state with the
// cohort, so the cohort's measured report is byte-identical at any
// worker count.
func TestScaleCohortByteIdentity(t *testing.T) {
	const globalN, cohortN = 256, 16
	wantFp, wantLite := runScale(t, globalN, cohortN, 0)
	if wantLite <= 0 {
		t.Fatalf("lite plane modelled %v kbps, want > 0", wantLite)
	}
	workerCounts := []int{1, 4}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, w := range workerCounts {
		fp, lite := runScale(t, globalN, cohortN, w)
		if fp != wantFp {
			t.Errorf("workers=%d: cohort fingerprint %s, want %s (serial)", w, fp, wantFp)
		}
		if lite != wantLite {
			t.Errorf("workers=%d: lite mean %v kbps, want %v", w, lite, wantLite)
		}
	}
}

// TestScaleSessionShape: cohort wiring invariants — the session's members
// are exactly the cohort ids, the fanout matches the modelled global
// size, and the analytic prediction targets globalN (not the cohort).
func TestScaleSessionShape(t *testing.T) {
	const globalN, cohortN = 256, 16
	ss, err := NewScaleSession(ScaleConfig{
		GlobalNodes: globalN, CohortNodes: cohortN,
		StreamKbps: 2, UpdateBytes: 64, ModulusBits: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ss.GlobalNodes() != globalN {
		t.Errorf("GlobalNodes() = %d", ss.GlobalNodes())
	}
	if got, want := ss.Config().Fanout, model.FanoutFor(globalN); got != want {
		t.Errorf("cohort fanout %d, want FanoutFor(%d) = %d", got, globalN, want)
	}
	if got := len(ss.Cohort); got != cohortN {
		t.Errorf("%d cohort ids, want %d", got, cohortN)
	}
	if ss.Lite.Len() != globalN-cohortN {
		t.Errorf("%d lite nodes, want %d", ss.Lite.Len(), globalN-cohortN)
	}
	if ss.AnalyticKbps() <= 0 {
		t.Errorf("analytic prediction %v, want > 0", ss.AnalyticKbps())
	}
	// A cohort too small for the global fanout must be rejected: the
	// protocol cannot pick Fanout distinct successors out of fewer peers.
	if _, err := NewScaleSession(ScaleConfig{
		GlobalNodes: 100000, CohortNodes: 3,
		StreamKbps: 2, UpdateBytes: 64, ModulusBits: 128, Seed: 7,
	}); err == nil {
		t.Error("undersized cohort accepted")
	}
}
