// Package pag is the public face of the PAG reproduction (Decouchant, Ben
// Mokhtar, Petit, Quéma — "PAG: Private and Accountable Gossip", ICDCS
// 2016): an accountable and partially privacy-preserving gossip
// dissemination protocol, its AcTinG and RAC baselines, a round-driven
// simulation engine with byte-exact bandwidth accounting, and the
// evaluation harness reproducing every table and figure of the paper.
//
// Quickstart:
//
//	session, err := pag.NewSession(pag.SessionConfig{
//	        Nodes:      48,
//	        Protocol:   pag.ProtocolPAG,
//	        StreamKbps: 300,
//	})
//	if err != nil { ... }
//	session.Run(20)
//	fmt.Println(session.BandwidthSample().Mean(), "kbps per node")
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// inventory); this package wires them into ready-to-run sessions.
package pag

import (
	"fmt"
	"runtime"

	"repro/internal/acting"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hhash"
	"repro/internal/judicial"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pki"
	"repro/internal/rac"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/streaming"
	"repro/internal/transport"
	"repro/internal/update"
)

// Protocol selects which system a session runs.
type Protocol int

// The three compared systems (§VII).
const (
	// ProtocolPAG is the paper's contribution: accountable and
	// privacy-preserving.
	ProtocolPAG Protocol = iota + 1
	// ProtocolAcTinG is the accountable, non-private baseline.
	ProtocolAcTinG
	// ProtocolRAC is the accountable anonymous-communication baseline.
	ProtocolRAC
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolPAG:
		return "PAG"
	case ProtocolAcTinG:
		return "AcTinG"
	case ProtocolRAC:
		return "RAC"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// NodeID re-exports the node identifier type.
type NodeID = model.NodeID

// Behavior re-exports the PAG selfish-deviation knobs.
type Behavior = core.Behavior

// Verdict re-exports PAG's proof-of-misbehaviour type.
type Verdict = core.Verdict

// QueueBacklog re-exports the bandwidth plane's per-node backlog entry
// (EpochStat.QueueDepthByNode elements).
type QueueBacklog = transport.QueueBacklog

// SessionConfig parameterises a simulated session.
type SessionConfig struct {
	// Nodes is the system size, including the source (node 1).
	Nodes int
	// MemberIDs optionally names the members explicitly instead of the
	// dense 1..Nodes numbering — the sampled-cohort scaling mode passes
	// the rendezvous-selected cohort here so full-fidelity nodes keep
	// their global identities. Must include SourceID (1) and, when
	// Nodes is also set, agree with it on the count. Mid-run joiners
	// are numbered from max(MemberIDs)+1.
	MemberIDs []model.NodeID
	// Protocol selects PAG (default), AcTinG or RAC.
	Protocol Protocol
	// StreamKbps is the source bitrate (default 300, the paper's Fig 7).
	StreamKbps int
	// UpdateBytes is the chunk size (default 938, §VII-A).
	UpdateBytes int
	// Fanout / Monitors default to the paper's log10(N) rule with a
	// floor of 3.
	Fanout   int
	Monitors int
	// ModulusBits / PrimeBits size the homomorphic hash (default 512 as
	// in the paper; simulations commonly use 128 for speed — the wire
	// sizes shrink accordingly, so pass 512 for paper-faithful
	// bandwidth numbers).
	ModulusBits int
	PrimeBits   int
	// BuffermapWindow is the §V-D ownership window (default 4; negative
	// disables buffermaps — an ablation).
	BuffermapWindow int
	// TTL is the forwarding expiration in rounds (§V-D: "Determining
	// this expiration delay is up to the system designer"). It defaults
	// to the epidemic saturation time ⌈log_f N⌉ plus two rounds of
	// slack, capped at the 10-round playout delay: forwarding past
	// saturation only re-circulates content everyone already has.
	TTL model.Round
	// Seed drives the membership assignment.
	Seed uint64
	// MonitorRotationRounds re-draws every monitor set after this many
	// rounds (0 keeps monitors static, the paper's setting). Rotation
	// bounds how long one monitor watches one node; the rotation-round
	// forwarding-check gap it used to open is closed by the obligation
	// handover (see internal/core).
	MonitorRotationRounds int
	// DisableObligationHandover turns the monitor-rotation obligation
	// handover off — the pre-handover protocol, kept as an ablation so
	// the rotation-gap exploit stays demonstrable in tests.
	DisableObligationHandover bool
	// DisablePrimePool generates exchange primes inline with the full
	// 20-round Miller-Rabin schedule instead of each node's background
	// pregeneration pool — the crypto-hot-path ablation the equivalence
	// gate runs against.
	DisablePrimePool bool
	// DisableBatchVerify verifies each attestation hash with its own
	// exponentiation instead of one coefficient-weighted folded equation.
	DisableBatchVerify bool
	// DisableFlyweight detaches the session-wide update-content interner:
	// every node keeps its own payload/signature copies — the pre-flyweight
	// memory representation, kept as an ablation so the bytes/node claim
	// stays measurable and the equivalence gate can prove the flyweight
	// changes no observable (flyweight_gate_test.go).
	DisableFlyweight bool
	// Judicial arms the accountability plane's punishment loop: nodes
	// reaching the conviction threshold are evicted from the membership
	// and quarantined. The zero value is reporting-only. A scenario with
	// an Eviction block arms the loop too; an explicitly set Judicial
	// wins.
	Judicial judicial.Policy
	// PAGBehaviors / ActingBehaviors / RACBehaviors inject selfish
	// deviations per node for the respective protocol.
	PAGBehaviors    map[model.NodeID]core.Behavior
	ActingBehaviors map[model.NodeID]acting.Behavior
	RACBehaviors    map[model.NodeID]rac.Behavior
	// AuditPeriod tunes the AcTinG baseline (default 5 rounds).
	AuditPeriod int
	// Scenario optionally scripts the session: churn, network faults and
	// adversary activation fire from its timeline at the top of each
	// round (see internal/scenario). Nil runs the static, fault-free
	// population of the paper's baseline measurements.
	Scenario *scenario.Scenario
	// Workers selects the round engine: 0 runs the serial engine
	// (internal/sim), n > 0 the sharded parallel engine (internal/engine)
	// with n workers, and n < 0 the parallel engine with GOMAXPROCS
	// workers. Every setting produces byte-identical runs from the same
	// seed — the engines merge traffic in a canonical order at phase
	// barriers — so Workers is purely a wall-clock knob. The parallel
	// engine requires the in-memory transport; combined with NewNetwork
	// it is an error.
	Workers int
	// NewNetwork optionally supplies the session's transport (called once
	// per session, so one config can build several sessions on fresh
	// networks). Nil runs the deterministic in-memory MemNet; a TCPNet in
	// stepped mode (SetStepped — required, NewSession rejects a direct-
	// delivery TCPNet) runs the same session over real sockets. The
	// parallel engine (Workers != 0) works only on a MemNet, supplied or
	// default; other transports need the serial engine and trade
	// byte-identical replay for statistical equivalence: the fault plane
	// is consulted in wall-clock send order, not canonical merge order.
	NewNetwork func() transport.FaultyNetwork
	// Obs optionally attaches an observability metrics registry (see
	// internal/obs): the engines, the fault plane, the membership
	// directory, the judicial registry and every PAG node register their
	// instruments into it. Deterministic-class metrics snapshot
	// byte-identically at any worker count; wall-clock durations are
	// quarantined in timed/sched classes outside the determinism
	// boundary. Nil disables instrumentation at the cost of one nil
	// check per event.
	Obs *obs.Registry
	// Trace optionally attaches a structured round-event tracer (JSONL:
	// exchange opens, verdicts, membership epochs, fault-plane queue
	// activity). Tracing is outside the determinism boundary — event
	// ordering follows wall-clock submission order. Nil disables.
	Trace *obs.Tracer
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Protocol == 0 {
		c.Protocol = ProtocolPAG
	}
	if len(c.MemberIDs) > 0 && c.Nodes == 0 {
		c.Nodes = len(c.MemberIDs)
	}
	if c.StreamKbps == 0 {
		c.StreamKbps = 300
	}
	if c.UpdateBytes == 0 {
		c.UpdateBytes = model.UpdateBytes
	}
	if c.Fanout == 0 {
		c.Fanout = model.FanoutFor(c.Nodes)
	}
	if c.Monitors == 0 {
		c.Monitors = c.Fanout
	}
	if c.ModulusBits == 0 {
		c.ModulusBits = hhash.DefaultModulusBits
	}
	if c.PrimeBits == 0 {
		c.PrimeBits = c.ModulusBits
	}
	if c.TTL == 0 {
		sat := 0
		for reach := 1; reach < c.Nodes; reach *= c.Fanout + 1 {
			sat++
		}
		c.TTL = model.Round(sat + 2)
		if c.TTL < 4 {
			c.TTL = 4
		}
		if c.TTL > model.PlayoutDelayRounds {
			c.TTL = model.PlayoutDelayRounds
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Session is a runnable simulated deployment.
type Session struct {
	cfg    SessionConfig
	net    transport.FaultyNetwork
	engine sim.Stepper
	source *streaming.Source

	// engineKind / engineWorkers describe the selected round engine
	// ("serial" or "parallel"; effective worker count) for run metadata.
	engineKind    string
	engineWorkers int

	// registry is the accountability plane's unified verdict pipeline:
	// every protocol's verdict sink submits into it (it is safe for the
	// parallel engine's worker goroutines), duplicates collapse by
	// (accused, accuser, round, kind), and every consumer — views,
	// conviction tallies, per-epoch metrics — reads the deduplicated
	// fact set in canonical order, so nothing depends on append order.
	registry *judicial.Registry
	// bench turns registry tallies into eviction judgments when the
	// configured policy is armed.
	bench *judicial.Bench

	// suite / params / dir are kept for mid-run node construction
	// (scenario joins mint fresh identities against the same PKI and
	// hash parameters).
	suite  pki.Suite
	params hhash.Params
	dir    *membership.Directory
	// shared is the flyweight session plane every PAG node references
	// (one immutable config/roster instead of per-node copies); intern is
	// the session-wide update-content table inside it (nil under the
	// DisableFlyweight ablation).
	shared *core.Shared
	intern *update.Interner

	pagNodes    map[model.NodeID]*core.Node
	actingNodes map[model.NodeID]*acting.Node
	racNodes    map[model.NodeID]*rac.Node
	players     map[model.NodeID]*streaming.Player

	// Scenario state: the driving timeline (nil without a scenario),
	// join/departure bookkeeping and the epoch marks metrics are sliced
	// by.
	timeline *scenario.Timeline
	nextID   model.NodeID
	// joinedChunk records, per mid-run joiner, how many chunks the
	// source had emitted at join time — the fair continuity baseline.
	joinedChunk map[model.NodeID]uint64
	departed    map[model.NodeID]model.Round
	epochMarks  []epochMark

	// evicted marks ids the punishment loop expelled; unlike other
	// departures they may re-join under the same id once their
	// quarantine expires.
	evicted          map[model.NodeID]bool
	evictions        []Eviction
	rejoinRejections []RejoinRejection
}

// SourceID is the session's source node.
const SourceID = model.NodeID(1)

// NewSession assembles a session over the in-memory network.
func NewSession(cfg SessionConfig) (*Session, error) {
	c := cfg.withDefaults()
	if c.Nodes < c.Fanout+2 {
		return nil, fmt.Errorf("pag: %d nodes too few for fanout %d", c.Nodes, c.Fanout)
	}
	var netw transport.FaultyNetwork
	if c.NewNetwork != nil {
		netw = c.NewNetwork()
	} else {
		netw = transport.NewMemNet()
	}
	// Every error return below must release the transport — a TCP-backed
	// session already holds real listeners once nodes start registering.
	ok := false
	defer func() {
		if !ok {
			_ = netw.Close()
		}
	}()
	// The punishment loop's policy: an explicit Judicial wins, otherwise
	// a scenario's scripted Eviction block arms it.
	policy := c.Judicial
	if !policy.Enabled() && c.Scenario != nil && c.Scenario.Eviction != nil {
		policy = judicial.Policy{
			ConvictionThreshold: c.Scenario.Eviction.ConvictionThreshold,
			QuarantineRounds:    c.Scenario.Eviction.QuarantineRounds,
		}
	}
	s := &Session{
		cfg:         c,
		net:         netw,
		registry:    judicial.NewRegistry(),
		bench:       judicial.NewBench(policy),
		pagNodes:    make(map[model.NodeID]*core.Node),
		actingNodes: make(map[model.NodeID]*acting.Node),
		racNodes:    make(map[model.NodeID]*rac.Node),
		players:     make(map[model.NodeID]*streaming.Player),
		nextID:      model.NodeID(c.Nodes + 1),
		joinedChunk: make(map[model.NodeID]uint64),
		departed:    make(map[model.NodeID]model.Round),
		evicted:     make(map[model.NodeID]bool),
	}
	// A transport that delivers on its own goroutines (a direct-mode
	// TCPNet) would run handlers concurrently with node steps — AcTinG
	// and RAC nodes carry no locks, so that is a race, not a slow path.
	// The engines' contract is stepped delivery; refuse anything else.
	if sm, hasMode := s.net.(interface{ SteppedMode() bool }); hasMode && !sm.SteppedMode() {
		return nil, fmt.Errorf("pag: %s transport must be in stepped delivery mode for a session (call SetStepped before NewSession)", s.net.Name())
	}
	if c.Workers == 0 {
		se := sim.NewEngine(s.net)
		se.Instrument(c.Obs, c.Trace)
		s.engine = se
		s.engineKind, s.engineWorkers = "serial", 1
	} else {
		mn, isMem := s.net.(*transport.MemNet)
		if !isMem {
			return nil, fmt.Errorf("pag: the parallel engine (Workers=%d) requires the in-memory transport; run %s with Workers 0",
				c.Workers, s.net.Name())
		}
		pe := engine.New(mn, c.Workers)
		pe.Instrument(c.Obs, c.Trace)
		s.engine = pe
		s.engineKind, s.engineWorkers = "parallel", pe.Workers()
	}
	s.net.Faults().SetSeed(c.Seed)
	s.net.Faults().Instrument(c.Obs, c.Trace)
	s.registry.Instrument(c.Obs, c.Trace)
	// The link model's queue-expiry deadline follows the forwarding TTL:
	// bytes still waiting behind an upload cap when their content's
	// playout window closes (§V-D) can no longer help the receiver. A
	// scenario's set_queue_cap events may retune it mid-run.
	s.net.Faults().SetQueueDeadline(int(c.TTL))

	ids := make([]model.NodeID, c.Nodes)
	for i := range ids {
		ids[i] = model.NodeID(i + 1)
	}
	if len(c.MemberIDs) > 0 {
		if len(c.MemberIDs) != c.Nodes {
			return nil, fmt.Errorf("pag: %d explicit member ids but Nodes=%d", len(c.MemberIDs), c.Nodes)
		}
		copy(ids, c.MemberIDs)
		hasSource := false
		var maxID model.NodeID
		for _, id := range ids {
			if id == SourceID {
				hasSource = true
			}
			if id > maxID {
				maxID = id
			}
		}
		if !hasSource {
			return nil, fmt.Errorf("pag: explicit member ids must include the source %v", SourceID)
		}
		s.nextID = maxID + 1
	}
	dir, err := membership.New(ids, membership.Config{
		Seed:                  c.Seed,
		Fanout:                c.Fanout,
		Monitors:              c.Monitors,
		MonitorRotationRounds: c.MonitorRotationRounds,
		Metrics:               c.Obs,
		Trace:                 c.Trace,
	})
	if err != nil {
		return nil, fmt.Errorf("pag: membership: %w", err)
	}
	s.dir = dir

	suite := pki.NewFastSuite()
	var params hhash.Params
	if c.Protocol == ProtocolPAG {
		params, err = hhash.GenerateParams(nil, c.ModulusBits)
		if err != nil {
			return nil, fmt.Errorf("pag: hash parameters: %w", err)
		}
	}
	s.suite = suite
	s.params = params

	if c.Protocol == ProtocolPAG {
		if !c.DisableFlyweight {
			s.intern = update.NewInterner()
		}
		s.shared = core.NewShared(core.Config{
			Suite:                suite,
			HashParams:           params,
			Directory:            dir,
			Sources:              []model.NodeID{SourceID},
			PrimeBits:            c.PrimeBits,
			BuffermapWindow:      c.BuffermapWindow,
			NoObligationHandover: c.DisableObligationHandover,
			DisablePrimePool:     c.DisablePrimePool,
			DisableBatchVerify:   c.DisableBatchVerify,
			Metrics:              c.Obs,
			Trace:                c.Trace,
			Intern:               s.intern,
		})
	}

	identities := make(map[model.NodeID]pki.Identity, c.Nodes)
	for _, id := range ids {
		identity, err := suite.NewIdentity(id)
		if err != nil {
			return nil, fmt.Errorf("pag: identity for %v: %w", id, err)
		}
		identities[id] = identity
	}

	var sourceInjector streaming.Injector
	for _, id := range ids {
		player := streaming.NewPlayer(0)
		s.players[id] = player

		switch c.Protocol {
		case ProtocolPAG:
			n, err := s.buildPAGNode(id, suite, identities[id], params, dir, player)
			if err != nil {
				return nil, err
			}
			s.pagNodes[id] = n
			s.engine.Add(n)
			if id == SourceID {
				sourceInjector = n
			}
		case ProtocolAcTinG:
			n, err := s.buildActingNode(id, suite, identities[id], dir, player)
			if err != nil {
				return nil, err
			}
			s.actingNodes[id] = n
			s.engine.Add(n)
			if id == SourceID {
				sourceInjector = n
			}
		case ProtocolRAC:
			n, err := s.buildRACNode(id, suite, identities[id], dir, player)
			if err != nil {
				return nil, err
			}
			s.racNodes[id] = n
			s.engine.Add(n)
			if id == SourceID {
				sourceInjector = n
			}
		default:
			return nil, fmt.Errorf("pag: unknown protocol %v", c.Protocol)
		}
	}

	s.source, err = streaming.NewSource(0, identities[SourceID], sourceInjector,
		c.StreamKbps, c.UpdateBytes, c.TTL)
	if err != nil {
		return nil, fmt.Errorf("pag: source: %w", err)
	}
	s.epochMarks = []epochMark{{start: 1}}

	// The punishment loop runs first at every round top: it judges the
	// evidence of completed rounds, so its evictions land before the
	// scenario's churn (a scripted re-join of a just-evicted id must see
	// the quarantine) and before the source injects.
	if s.bench.Policy().Enabled() {
		s.engine.OnRoundStart(func(r model.Round) { s.applyJudgments(r) })
	}
	// The scenario hook registers next so churn and faults land before
	// the source injects the round's chunks.
	if c.Scenario != nil {
		tl, err := scenario.Compile(*c.Scenario)
		if err != nil {
			return nil, fmt.Errorf("pag: scenario: %w", err)
		}
		s.timeline = tl
		tl.Instrument(c.Trace)
		s.engine.OnRoundStart(func(r model.Round) { tl.Apply(r, s) })
	}
	s.engine.OnRoundStart(func(r model.Round) { _ = s.source.Tick(r) })
	// Prewarm the round's membership view after any scheduled churn has
	// landed, so concurrent node steps hit a read-only snapshot instead
	// of racing to build it.
	s.engine.OnRoundStart(func(r model.Round) { s.dir.View(r) })
	// Expired content leaves the flyweight table at the round top (an
	// expired update can never be served again, and store entries keep
	// their aliases alive until each node's own retention GC).
	if s.intern != nil {
		s.engine.OnRoundStart(func(r model.Round) { s.intern.DropExpired(r) })
	}
	// Live heap per member, sampled at each round top. ClassSched: the
	// value is a host artifact (GC timing, allocator state), not a
	// protocol observable — it never enters deterministic snapshots.
	if c.Obs != nil {
		memGauge := c.Obs.GaugeClass("pag_mem_bytes_per_node", obs.ClassSched)
		members := c.Nodes
		s.engine.OnRoundStart(func(model.Round) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			memGauge.Set(int64(ms.HeapAlloc) / int64(members))
		})
	}
	ok = true
	return s, nil
}

// EngineInfo describes the round engine a run executed on. It is run
// metadata, not part of the measured results: byte-identical runs are
// produced at every worker count.
type EngineInfo struct {
	// Kind is "serial" (internal/sim) or "parallel" (internal/engine).
	Kind string `json:"kind"`
	// Workers is the effective worker count (1 for the serial engine).
	Workers int `json:"workers"`
	// Transport is the network the run used ("mem" or "tcp"). Like the
	// rest of this block it is metadata: "mem" runs are byte-identical
	// under a seed, "tcp" runs are statistically equivalent.
	Transport string `json:"transport,omitempty"`
	// ReportDigest, when set by a report writer, is the SHA-256 of the
	// report's deterministic portion (everything except this field's
	// struct) — the value to compare across machines and worker counts.
	ReportDigest string `json:"report_digest,omitempty"`
}

// EngineInfo returns the session's engine metadata.
func (s *Session) EngineInfo() EngineInfo {
	return EngineInfo{Kind: s.engineKind, Workers: s.engineWorkers, Transport: s.net.Name()}
}

// Close releases the session's transport (listeners and connections for a
// TCP-backed session; a no-op for the in-memory network). If the session
// was traced, a write error the tracer latched mid-run surfaces here — a
// silently truncated journal would otherwise masquerade as a quiet run.
func (s *Session) Close() error {
	err := s.net.Close()
	if terr := s.cfg.Trace.Err(); terr != nil {
		if err == nil {
			err = fmt.Errorf("pag: trace: %w", terr)
		} else {
			err = fmt.Errorf("%w; trace: %w", err, terr)
		}
	}
	return err
}

// Run advances the session by n rounds.
func (s *Session) Run(n int) { s.engine.Run(n) }

// StartMeasuring begins the steady-state bandwidth window (call after the
// warm-up rounds).
func (s *Session) StartMeasuring() { s.engine.StartMeasuring() }

// Round returns the last completed round.
func (s *Session) Round() model.Round { return s.engine.Round() }

// BandwidthSample returns the per-node bandwidth distribution in kbps over
// the measured window, excluding the source (a client-side metric, as in
// Fig 7).
func (s *Session) BandwidthSample() stats.Sample {
	return s.engine.BandwidthSample(SourceID)
}

// NodeBandwidthKbps returns one node's average bandwidth over the
// measured window in kbps.
func (s *Session) NodeBandwidthKbps(id model.NodeID) float64 {
	return s.engine.NodeBandwidthKbps(id)
}

// Player returns a node's playback metrics.
func (s *Session) Player(id model.NodeID) *streaming.Player { return s.players[id] }

// Emitted returns how many updates the source has released.
func (s *Session) Emitted() uint64 { return s.source.Emitted() }

// MeanContinuity returns the average playback continuity across current
// clients for the chunks whose playout deadline has passed. Departed nodes
// are excluded; a mid-run joiner is measured from its join point (it could
// never have received chunks that expired before it arrived).
func (s *Session) MeanContinuity() float64 {
	// Only chunks released at least TTL rounds ago have reached their
	// deadline.
	due := s.dueThrough(s.engine.Round())
	if due == 0 {
		return 0
	}
	total, count := 0.0, 0
	for _, id := range sortedIDs(s.players) {
		if id == SourceID {
			continue
		}
		if _, gone := s.departed[id]; gone {
			continue
		}
		lo := s.joinedChunk[id] // 0 for founding members
		if lo >= due {
			continue // joined too recently for any fair deadline
		}
		total += float64(s.players[id].DeliveredInRange(lo, due)) / float64(due-lo)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// dueThrough returns how many chunks have passed their playout deadline by
// the end of round r.
func (s *Session) dueThrough(r model.Round) uint64 {
	ttl := uint64(s.cfg.TTL)
	if uint64(r) <= ttl {
		return 0
	}
	return (uint64(r) - ttl) * uint64(s.source.PerRound())
}

// QueueStats is a snapshot of the bandwidth plane's link-queue activity:
// how many messages upload caps deferred to later rounds, how many
// expired waiting, and how many are queued right now.
type QueueStats struct {
	// Deferred counts messages the queued link model held back for a
	// later round's budget (cumulative; deferral is delay, not loss).
	Deferred uint64 `json:"deferred"`
	// Expired counts queued messages dropped because they out-aged the
	// queue deadline before their cap released them.
	Expired uint64 `json:"expired"`
	// DownloadDropped counts arrivals discarded by receivers' download
	// caps (zero unless a download cap is set).
	DownloadDropped uint64 `json:"download_dropped"`
	// Depth is the backlog currently waiting across all nodes.
	Depth int `json:"depth"`
}

// QueueStats returns the session's current bandwidth-plane snapshot —
// the measured counterpart of the analytic Table II sustainability test:
// nonzero Deferred under a cap means the link is pacing traffic, nonzero
// Expired means it can no longer keep up within the playout window.
func (s *Session) QueueStats() QueueStats {
	f := s.net.Faults()
	return QueueStats{
		Deferred:        f.Deferred(),
		Expired:         f.CapExpired(),
		DownloadDropped: f.DownloadDropped(),
		Depth:           f.QueueDepth(),
	}
}

// ConvictedNodes returns the nodes accused by at least threshold distinct
// verdicts, with their counts — the punishment hook of §II-B ("the
// monitors generate a proof of misbehaviour and the misbehaving nodes get
// punished"). Counts are deduplicated facts: identical verdicts (same
// accused, accuser, round and kind) reported several times — monitor
// retries, re-raised findings — count once. Arm SessionConfig.Judicial
// (or a scenario Eviction block) to turn these tallies into actual
// evictions instead of just surfacing the evidence.
func (s *Session) ConvictedNodes(threshold int) map[model.NodeID]int {
	return s.registry.Convicted(threshold)
}

// PAGNodeStats returns the per-node PAG counters (Table I inputs).
func (s *Session) PAGNodeStats() map[model.NodeID]core.Stats {
	out := make(map[model.NodeID]core.Stats, len(s.pagNodes))
	for id, n := range s.pagNodes {
		out[id] = n.Stats()
	}
	return out
}

// Metrics returns a point-in-time snapshot of the session's observability
// registry (empty if the session was built without one). The snapshot's
// DeterministicText rendering is byte-identical at any worker count for
// the same seed and scenario.
func (s *Session) Metrics() obs.Snapshot { return s.cfg.Obs.Snapshot() }

// Config returns the session's effective configuration.
func (s *Session) Config() SessionConfig { return s.cfg }
