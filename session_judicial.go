package pag

import (
	"repro/internal/model"
	"repro/internal/obs"
)

// This file closes the accountability loop (§II-B: "the monitors generate
// a proof of misbehaviour and the misbehaving nodes get punished"): at the
// top of every round the judicial bench compares the registry's
// deduplicated conviction tallies against the armed policy and evicts the
// convicted from the membership. Eviction opens a membership epoch —
// excluding the node from every successor and monitor assignment drawn
// afterwards — and quarantines its id, so a re-Join during the quarantine
// is rejected.

// Eviction is one pronounced judgment: a node whose deduplicated verdict
// count crossed the policy threshold. Err records a membership that could
// not shrink (system already at minimum size) — the conviction stands,
// the node stays, and its monitors keep convicting it.
type Eviction struct {
	Round model.Round  `json:"round"`
	Node  model.NodeID `json:"node"`
	// Verdicts is the fresh (since the node's last judgment) fact count
	// that convicted it.
	Verdicts int `json:"verdicts"`
	// QuarantineUntil is the first round the id may re-join.
	QuarantineUntil model.Round `json:"quarantine_until,omitempty"`
	Err             string      `json:"error,omitempty"`
}

// RejoinRejection is one Join attempt bounced by an active quarantine.
type RejoinRejection struct {
	Round model.Round  `json:"round"`
	Node  model.NodeID `json:"node"`
	// Until is the quarantine expiry the attempt ran into.
	Until model.Round `json:"until"`
}

// applyJudgments runs at the top of round r, single-threaded, before the
// scenario timeline and the source: it evicts every node the bench
// convicts on the evidence of completed rounds. Determinism: the registry
// tallies are order-independent, the bench judges in ascending node
// order, and everything here happens before any node acts in the round.
func (s *Session) applyJudgments(r model.Round) {
	judgments := s.bench.Judge(r, s.registry, func(id model.NodeID) bool {
		if id == SourceID {
			return true // sources are assumed correct (§III)
		}
		_, gone := s.departed[id]
		return gone // already left, crashed or evicted
	})
	for _, j := range judgments {
		ev := Eviction{
			Round:           j.Round,
			Node:            j.Node,
			Verdicts:        j.Verdicts,
			QuarantineUntil: j.QuarantineUntil,
		}
		// The judgment record links the verdict facts (each carrying its
		// exchange's xid) to the membership_eviction the directory emits
		// next — the middle link of a pag-trace blame chain.
		s.cfg.Trace.Emit("judgment",
			obs.F("round", j.Round), obs.F("node", j.Node),
			obs.F("verdicts", j.Verdicts),
			obs.F("quarantine_until", j.QuarantineUntil))
		if err := s.dir.Evict(j.Node, r, j.QuarantineUntil); err != nil {
			ev.Err = err.Error()
			s.evictions = append(s.evictions, ev)
			continue
		}
		s.engine.Remove(j.Node)
		s.silence(j.Node)
		s.departed[j.Node] = r
		s.evicted[j.Node] = true
		s.bumpEpoch(r)
		s.evictions = append(s.evictions, ev)
	}
}

// Evictions returns the punishment loop's judgments so far (empty without
// an armed policy).
func (s *Session) Evictions() []Eviction {
	out := make([]Eviction, len(s.evictions))
	copy(out, s.evictions)
	return out
}

// RejoinRejections returns the Join attempts bounced by quarantines.
func (s *Session) RejoinRejections() []RejoinRejection {
	out := make([]RejoinRejection, len(s.rejoinRejections))
	copy(out, s.rejoinRejections)
	return out
}

// countInWindow counts rounds in [from, to] — shared by the per-epoch
// event tallies.
func countInWindow(rounds []model.Round, from, to model.Round) int {
	n := 0
	for _, r := range rounds {
		if r >= from && r <= to {
			n++
		}
	}
	return n
}
