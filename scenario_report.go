package pag

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// ScenarioReport is the result of running one scenario under one or more
// protocols — what cmd/pag-scenario emits. All slices are sorted and the
// JSON field order is the struct order, so the same scenario and seed
// produce byte-identical reports.
type ScenarioReport struct {
	Scenario  scenario.Scenario `json:"scenario"`
	Nodes     int               `json:"nodes"`
	Seed      uint64            `json:"seed"`
	Protocols []ProtocolRun     `json:"protocols"`
	// Engine records how the run was executed (engine kind, worker
	// count) plus the digest of everything else. Like the Scenario block
	// it is excluded from Digest(), so reports taken on different
	// machines or at different worker counts stay byte-comparable: strip
	// Engine, or compare Digest().
	Engine *EngineInfo `json:"engine,omitempty"`
}

// Digest returns the SHA-256 (hex) of the report's measured portion: the
// JSON rendering with the Engine metadata and the Scenario script
// stripped. Two runs of the same scenario and seed have equal digests
// regardless of engine kind, worker count or host — and a run of a
// *different* script that fires the identical resolved timeline (what
// `pag-trace replay` reconstructs: churn-generated events pinned to their
// resolved targets) digests equally too, which is exactly the equivalence
// replay verification needs. The applied-event journal stays inside the
// digest, so scripts that actually did different things cannot collide.
func (r ScenarioReport) Digest() string {
	r.Engine = nil
	r.Scenario = scenario.Scenario{}
	return fmt.Sprintf("%x", sha256.Sum256(r.JSON()))
}

// ProtocolRun is one protocol's measurements under the scenario.
type ProtocolRun struct {
	Protocol     string `json:"protocol"`
	Rounds       int    `json:"rounds"`
	FinalMembers int    `json:"final_members"`
	// MeanContinuity covers the whole run for the nodes alive at its
	// end (mid-run joiners measured from their join point).
	MeanContinuity float64 `json:"mean_continuity"`
	// MeanBandwidthKbps is the duration-weighted mean of the per-epoch
	// client bandwidths — byte deltas over members actually present, so
	// it stays truthful under churn (a per-node sample would silently
	// drop departed nodes and dilute late joiners over the full window).
	MeanBandwidthKbps float64 `json:"mean_bandwidth_kbps"`
	// MessagesDropped is the fault plane's combined discard counter:
	// scripted loss, partitions, down nodes and queue expiry. Expiry is
	// also broken out below so queue pressure and lossy links stay
	// distinguishable.
	MessagesDropped uint64 `json:"messages_dropped"`
	// MessagesDeferred counts sends the queued link model (upload caps)
	// carried over to a later round instead of dropping — delayed, not
	// lost. MessagesExpired counts the queued messages that out-aged the
	// playout deadline waiting for budget; they are included in
	// MessagesDropped. (Pre-queue reports called the latter cap drops.)
	MessagesDeferred uint64 `json:"messages_deferred"`
	MessagesExpired  uint64 `json:"messages_expired"`
	// Epochs slices the run by membership epoch.
	Epochs []EpochStat `json:"epochs"`
	// Convictions lists nodes with at least the conviction threshold of
	// deduplicated verdicts, ascending by node id.
	Convictions []Conviction `json:"convictions"`
	// Evictions is the punishment loop's judgment log (empty unless the
	// scenario's eviction policy — or SessionConfig.Judicial — is armed).
	Evictions []Eviction `json:"evictions"`
	// RejoinRejections lists the Join attempts bounced by quarantines.
	RejoinRejections []RejoinRejection `json:"rejoin_rejections"`
	// Journal is the applied-event log (what the timeline actually did).
	Journal []scenario.Applied `json:"journal"`
}

// Conviction is one convicted node with its verdict count.
type Conviction struct {
	Node     model.NodeID `json:"node"`
	Verdicts int          `json:"verdicts"`
}

// JSON renders the report deterministically.
func (r ScenarioReport) JSON() []byte {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("pag: marshalling scenario report: %v", err))
	}
	return append(out, '\n')
}

// weightedBandwidth averages the per-epoch client bandwidths weighted by
// epoch duration, so the headline figure and the epoch slices always
// reconcile.
func weightedBandwidth(epochs []EpochStat) float64 {
	var kbpsRounds, rounds float64
	for _, e := range epochs {
		d := float64(e.EndRound - e.StartRound + 1)
		kbpsRounds += e.MeanBandwidthKbps * d
		rounds += d
	}
	if rounds == 0 {
		return 0
	}
	return kbpsRounds / rounds
}

// RunScenarioReport runs the scenario under each listed protocol on an
// otherwise-identical configuration and gathers the comparison report.
// convictionThreshold is the verdict count that counts as a conviction
// (ConvictedNodes); 0 defaults to 1.
func RunScenarioReport(base SessionConfig, sc scenario.Scenario,
	protocols []Protocol, convictionThreshold int) (ScenarioReport, error) {
	if err := sc.Validate(); err != nil {
		return ScenarioReport{}, err
	}
	if len(protocols) == 0 {
		protocols = []Protocol{ProtocolPAG, ProtocolAcTinG, ProtocolRAC}
	}
	if convictionThreshold <= 0 {
		convictionThreshold = 1
	}
	report := ScenarioReport{
		Scenario: sc,
		Nodes:    base.Nodes,
		Seed:     base.Seed,
	}
	for _, p := range protocols {
		cfg := base
		cfg.Protocol = p
		cfg.Scenario = &sc
		s, err := NewSession(cfg)
		if err != nil {
			return ScenarioReport{}, fmt.Errorf("pag: scenario %q under %v: %w", sc.Name, p, err)
		}
		// One run_config record opens each protocol's segment of the trace
		// journal: everything pag-trace needs to re-invoke the run — the
		// full script plus the session knobs that shape the measured
		// results — rides in the journal itself, so a journal file is a
		// self-contained replay artifact.
		if base.Trace.Enabled() {
			info := s.EngineInfo()
			def := s.Config()
			base.Trace.Emit("run_config",
				obs.F("scenario", sc),
				obs.F("protocol", p.String()),
				obs.F("nodes", def.Nodes),
				obs.F("seed", def.Seed),
				obs.F("stream_kbps", def.StreamKbps),
				obs.F("modulus_bits", def.ModulusBits),
				obs.F("threshold", convictionThreshold),
				obs.F("workers", info.Workers),
				obs.F("engine", info.Kind),
				obs.F("transport", info.Transport))
		}
		if sc.WarmupRounds > 0 {
			s.Run(sc.WarmupRounds)
		}
		s.StartMeasuring()
		s.Run(sc.Rounds - sc.WarmupRounds)

		epochs := s.EpochStats()
		queue := s.QueueStats()
		run := ProtocolRun{
			Protocol:          p.String(),
			Rounds:            sc.Rounds,
			FinalMembers:      len(s.Members()),
			MeanContinuity:    s.MeanContinuity(),
			MeanBandwidthKbps: weightedBandwidth(epochs),
			MessagesDropped:   s.net.Dropped(),
			MessagesDeferred:  queue.Deferred,
			MessagesExpired:   queue.Expired,
			Epochs:            epochs,
			Convictions:       []Conviction{},
			Evictions:         s.Evictions(),
			RejoinRejections:  s.RejoinRejections(),
			Journal:           s.ScenarioJournal(),
		}
		convicted := s.ConvictedNodes(convictionThreshold)
		for _, id := range sortedIDs(convicted) {
			run.Convictions = append(run.Convictions, Conviction{Node: id, Verdicts: convicted[id]})
		}
		if run.Journal == nil {
			run.Journal = []scenario.Applied{}
		}
		report.Protocols = append(report.Protocols, run)
		if report.Engine == nil {
			info := s.EngineInfo()
			report.Engine = &info
		}
		// A TCP-backed session holds listeners and connections; each
		// protocol runs on a fresh network (NewNetwork is a factory), so
		// the finished one is released here.
		_ = s.Close()
	}
	if report.Engine != nil {
		report.Engine.ReportDigest = report.Digest()
		// The digest closes the journal: `pag-trace replay -verify`
		// compares a re-run's digest against this record.
		base.Trace.Emit("report_digest",
			obs.F("digest", report.Engine.ReportDigest),
			obs.F("scenario", sc.Name))
	}
	base.Trace.Flush()
	return report, nil
}
